//! Statistics collection.
//!
//! Every experiment output in `EXPERIMENTS.md` is produced from these
//! collectors: monotonic [`Counter`]s, log-bucketed [`Histogram`]s for
//! latency percentiles, [`TimeWeighted`] gauges for occupancy and power,
//! [`RateMeter`]s for throughput, and [`Series`] recorders for plotting a
//! value against simulated time (the figures).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }
    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }
    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Summary statistics extracted from a histogram or sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Summary {
    /// A summary representing "no samples".
    pub fn empty() -> Self {
        Summary {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            p999: 0.0,
        }
    }
}

/// A log-bucketed histogram of non-negative values (HdrHistogram-style with
/// power-of-two buckets subdivided linearly), trading a bounded ~3 % relative
/// error for O(1) insertion and fixed memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// 64 major buckets (by leading zero count) x 32 sub-buckets.
    counts: Vec<u64>,
    total: u64,
    /// Exact integer sum of recorded samples. Kept as an integer (not `f64`)
    /// so that accumulation and [`Histogram::merge`] are associative and
    /// commutative bit-for-bit — the sharded engine merges per-shard
    /// histograms in shard order and still must export byte-identical means
    /// regardless of how samples were distributed across shards.
    sum: u128,
    min: f64,
    max: f64,
}

const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let major = msb - SUB_BITS + 1;
        let sub = (value >> (major - 1)) as usize & (SUB_BUCKETS - 1);
        (major as usize) * SUB_BUCKETS + sub
    }

    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let major = (index / SUB_BUCKETS) as u32;
        let sub = (index % SUB_BUCKETS) as u128;
        let v = (SUB_BUCKETS as u128 + sub) << (major - 1);
        v.min(u64::MAX as u128) as u64
    }

    /// Records an integer sample (e.g. picoseconds or bytes).
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value as f64);
        self.max = self.max.max(value as f64);
    }

    /// Records a duration in picoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_picos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in [0, 1]. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return Self::bucket_value(idx) as f64;
            }
        }
        self.max
    }

    /// Extracts a full summary.
    pub fn summary(&self) -> Summary {
        if self.total == 0 {
            return Summary::empty();
        }
        Summary {
            count: self.total,
            min: self.min,
            max: self.max,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }

    /// The non-empty buckets as `(representative value, count)` pairs in
    /// ascending value order. Together with [`Histogram::sample_sum`] this is
    /// a complete, exact serialisation of the histogram (used by the
    /// `rackfabric-sweep` result store and for CDF plotting); feed the pairs
    /// back through [`Histogram::from_sparse`] to reconstruct it.
    pub fn sparse_counts(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(idx, &c)| (Self::bucket_value(idx), c))
            .collect()
    }

    /// Exact integer sum of all recorded samples.
    pub fn sample_sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample, if any were recorded. Samples are integers,
    /// so the observed f64 minimum converts back exactly.
    pub fn min_sample(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min as u64)
    }

    /// Largest recorded sample, if any were recorded.
    pub fn max_sample(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max as u64)
    }

    /// Reconstructs a histogram from its exact serialised parts: the sparse
    /// `(representative value, count)` pairs of [`Histogram::sparse_counts`],
    /// the integer [`Histogram::sample_sum`], and the recorded min/max
    /// samples. Round-trips bit-identically: every representative value maps
    /// back to the bucket it came from.
    pub fn from_sparse(
        sparse: &[(u64, u64)],
        sum: u128,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Histogram {
        let mut h = Histogram::new();
        for &(value, count) in sparse {
            let idx = Self::bucket_index(value);
            h.counts[idx] += count;
            h.total += count;
        }
        h.sum = sum;
        if let Some(min) = min {
            h.min = min as f64;
        }
        if let Some(max) = max {
            h.max = max as f64;
        }
        h
    }

    /// Merges another histogram into this one. Merging is exact: counts and
    /// the integer sample sum combine associatively, so merging per-shard
    /// histograms yields bit-identical summaries regardless of merge order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A time-weighted average of a piecewise-constant signal (queue occupancy,
/// instantaneous power draw, lane count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    elapsed_ps: f64,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates an empty gauge.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            elapsed_ps: 0.0,
            max: f64::NEG_INFINITY,
            started: false,
        }
    }

    /// Records that the signal took `value` starting at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        if self.started {
            let dt = now.saturating_since(self.last_time).as_picos() as f64;
            self.weighted_sum += self.last_value * dt;
            self.elapsed_ps += dt;
        }
        self.started = true;
        self.last_time = now;
        self.last_value = value;
        self.max = self.max.max(value);
    }

    /// Closes the observation window at `now` and returns the time-weighted
    /// mean. The gauge remains usable afterwards.
    pub fn mean_until(&mut self, now: SimTime) -> f64 {
        if self.started {
            self.set(now, self.last_value);
        }
        if self.elapsed_ps == 0.0 {
            self.last_value
        } else {
            self.weighted_sum / self.elapsed_ps
        }
    }

    /// The maximum value ever set (or 0 when never set).
    pub fn max(&self) -> f64 {
        if self.max == f64::NEG_INFINITY {
            0.0
        } else {
            self.max
        }
    }

    /// The most recent value (or 0 when never set).
    pub fn current(&self) -> f64 {
        if self.started {
            self.last_value
        } else {
            0.0
        }
    }
}

/// An exponentially weighted rate meter for throughput-style measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateMeter {
    window: SimDuration,
    last_update: SimTime,
    bytes_in_window: f64,
    rate_bps: f64,
    total_bytes: u64,
}

impl RateMeter {
    /// Creates a meter with the given smoothing window.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate meter window must be non-zero");
        RateMeter {
            window,
            last_update: SimTime::ZERO,
            bytes_in_window: 0.0,
            rate_bps: 0.0,
            total_bytes: 0,
        }
    }

    /// Records `bytes` delivered at time `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.decay_to(now);
        self.bytes_in_window += bytes as f64;
        self.total_bytes += bytes;
        self.refresh_rate();
    }

    fn decay_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update);
        if dt.is_zero() {
            return;
        }
        let alpha = (-(dt.as_picos() as f64) / self.window.as_picos() as f64).exp();
        self.bytes_in_window *= alpha;
        self.last_update = now;
    }

    fn refresh_rate(&mut self) {
        let window_s = self.window.as_secs_f64();
        self.rate_bps = self.bytes_in_window * 8.0 / window_s;
    }

    /// The smoothed rate in bits per second as of the last record.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Total bytes ever recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Average goodput over `[start, end]` based on the total byte count.
    pub fn average_bps(&self, start: SimTime, end: SimTime) -> f64 {
        let dt = end.saturating_since(start).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.total_bytes as f64 * 8.0 / dt
        }
    }
}

/// A named (time, value) series used to regenerate the paper's figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Name of the series, e.g. `"switching_latency_ns"`.
    pub name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends an (x, y) point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Appends a point keyed by simulated time in microseconds.
    pub fn push_at(&mut self, t: SimTime, y: f64) {
        self.points.push((t.as_micros_f64(), y));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Maximum y value, if any.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.max(y))))
    }

    /// Renders the series as aligned text rows (x then y), used by the
    /// experiment harness to print figure data.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.name));
        for (x, y) in &self.points {
            out.push_str(&format!("{x:>16.4} {y:>16.6}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile(0.0), 0.0);
        // Values below 32 are stored exactly.
        assert_eq!(h.quantile(1.0), 31.0);
        assert!((h.mean() - 15.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_have_bounded_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.05, "p50 was {p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.05, "p99 was {p99}");
        let s = h.summary();
        assert_eq!(s.count, 100_000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100_000.0);
    }

    #[test]
    fn histogram_empty_summary_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), Summary::empty());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..1000 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        assert_eq!(a.summary().min, 0.0);
        assert!(a.summary().max >= 1999.0);
    }

    #[test]
    fn histogram_bucket_value_is_monotone() {
        let mut last = 0;
        for i in 0..(64 * SUB_BUCKETS) {
            let v = Histogram::bucket_value(i);
            assert!(v >= last, "bucket values must be monotone (index {i})");
            last = v;
        }
    }

    #[test]
    fn histogram_sparse_round_trip_is_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 31, 32, 1000, 123_456_789, u64::MAX / 2] {
            h.record(v);
            h.record(v);
        }
        let back = Histogram::from_sparse(
            &h.sparse_counts(),
            h.sample_sum(),
            h.min_sample(),
            h.max_sample(),
        );
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sample_sum(), h.sample_sum());
        assert_eq!(back.summary(), h.summary());
        assert_eq!(back.sparse_counts(), h.sparse_counts());

        let empty = Histogram::from_sparse(&[], 0, None, None);
        assert_eq!(empty.summary(), Summary::empty());
        assert_eq!(empty.sparse_counts(), Vec::new());
    }

    #[test]
    fn histogram_record_duration() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_nanos(500));
        assert_eq!(h.count(), 1);
        assert!(h.mean() >= 499_000.0);
    }

    #[test]
    fn time_weighted_mean_of_square_wave() {
        let mut g = TimeWeighted::new();
        g.set(SimTime::from_nanos(0), 0.0);
        g.set(SimTime::from_nanos(50), 10.0);
        let mean = g.mean_until(SimTime::from_nanos(100));
        // 0 for 50 ns then 10 for 50 ns -> mean 5.
        assert!((mean - 5.0).abs() < 1e-9, "mean was {mean}");
        assert_eq!(g.max(), 10.0);
        assert_eq!(g.current(), 10.0);
    }

    #[test]
    fn time_weighted_unset_is_zero() {
        let mut g = TimeWeighted::new();
        assert_eq!(g.mean_until(SimTime::from_secs(1)), 0.0);
        assert_eq!(g.max(), 0.0);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn rate_meter_tracks_constant_stream() {
        let mut m = RateMeter::new(SimDuration::from_micros(10));
        // 1250 bytes every microsecond is 10 Gb/s.
        for i in 1..=200u64 {
            m.record(SimTime::from_micros(i), 1250);
        }
        let rate = m.rate_bps();
        assert!(
            (rate - 1e10).abs() / 1e10 < 0.25,
            "smoothed rate should approach 10 Gb/s, was {rate}"
        );
        assert_eq!(m.total_bytes(), 250_000);
        let avg = m.average_bps(SimTime::ZERO, SimTime::from_micros(200));
        assert!((avg - 1e10).abs() / 1e10 < 0.01, "average was {avg}");
    }

    #[test]
    fn rate_meter_decays_when_idle() {
        let mut m = RateMeter::new(SimDuration::from_micros(1));
        m.record(SimTime::from_micros(1), 10_000);
        let busy = m.rate_bps();
        m.record(SimTime::from_micros(100), 0);
        assert!(m.rate_bps() < busy / 100.0);
    }

    #[test]
    fn series_records_and_formats() {
        let mut s = Series::new("latency_ns");
        assert!(s.is_empty());
        s.push(1.0, 300.0);
        s.push_at(SimTime::from_micros(2), 450.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last_y(), Some(450.0));
        assert_eq!(s.max_y(), Some(450.0));
        let table = s.to_table();
        assert!(table.starts_with("# latency_ns\n"));
        assert_eq!(table.lines().count(), 3);
    }
}
