//! Deterministic random number generation.
//!
//! Every experiment in the repository must be reproducible from a single
//! `u64` seed, including across library upgrades, so the generator is
//! implemented here (xoshiro256** seeded through SplitMix64) rather than
//! relying on `StdRng`, whose algorithm is explicitly not stable across
//! `rand` releases. The `rand` crate is still used by callers that want the
//! `Rng` trait extension methods; [`DetRng`] implements [`rand::RngCore`].
//!
//! Besides raw integers, this module provides the handful of distributions
//! the workload generators need: uniform ranges, exponential inter-arrival
//! times, Pareto and log-normal flow sizes, and Zipf hotspot selection.

use rand::RngCore;

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix64(*state)
}

/// The SplitMix64 finalizer: one strong avalanche round over a `u64`. The
/// single shared implementation of this constant soup in the workspace —
/// also used to hash event ids on the scheduler hot path.
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator with convenience distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent child generator. Children created with
    /// different labels from the same parent state are statistically
    /// independent streams; used to give each component its own stream so
    /// that adding a component does not perturb the draws of another.
    pub fn split(&mut self, label: u64) -> DetRng {
        let mixed = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(mixed)
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Lemire-style rejection-free enough for simulation purposes: use
        // 128-bit multiply to map uniformly.
        let x = self.next_u64();
        let m = (x as u128 * span as u128) >> 64;
        range.start + m as u64
    }

    /// A uniform usize in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.range_u64(0..bound as u64) as usize
    }

    /// Returns true with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed value with the given mean (inter-arrival
    /// times of a Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// A bounded Pareto sample (heavy-tailed flow sizes).
    pub fn pareto(&mut self, shape: f64, min: f64, max: f64) -> f64 {
        assert!(
            shape > 0.0 && min > 0.0 && max > min,
            "invalid Pareto parameters"
        );
        let u = self.next_f64();
        let ha = max.powf(-shape);
        let la = min.powf(-shape);
        let x = (ha + u * (la - ha)).powf(-1.0 / shape);
        x.clamp(min, max)
    }

    /// A log-normal sample parameterised by the mean and sigma of the
    /// underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// A standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A Zipf-distributed index in `[0, n)` with exponent `s` (s=0 is
    /// uniform; larger s concentrates probability on low indices). Used for
    /// hotspot destination selection.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf needs at least one element");
        if n == 1 {
            return 0;
        }
        // Inverse-CDF over the (small) support; n is at most a few thousand
        // nodes in a rack so the linear scan is fine and exact.
        let mut norm = 0.0;
        for k in 1..=n {
            norm += 1.0 / (k as f64).powf(s);
        }
        let target = self.next_f64() * norm;
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            if acc >= target {
                return k - 1;
            }
        }
        n - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A random derangement-ish permutation of `0..n` used for permutation
    /// traffic: a shuffle re-drawn until no element maps to itself (for n>1).
    pub fn permutation_no_fixpoint(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        if n < 2 {
            return perm;
        }
        loop {
            self.shuffle(&mut perm);
            if perm.iter().enumerate().all(|(i, &p)| i != p) {
                return perm;
            }
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&DetRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = DetRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = DetRng::new(0);
        let v: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = DetRng::new(5);
        let mut a = parent.split(1);
        let mut b = parent.split(2);
        let overlap = (0..200).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(overlap < 5);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = DetRng::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut r = DetRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.range_u64(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(13);
        let n = 100_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() / mean < 0.02, "mean was {got}");
    }

    #[test]
    fn pareto_stays_in_bounds() {
        let mut r = DetRng::new(17);
        for _ in 0..10_000 {
            let x = r.pareto(1.2, 100.0, 1e7);
            assert!((100.0..=1e7).contains(&x));
        }
    }

    #[test]
    fn zipf_prefers_low_indices() {
        let mut r = DetRng::new(19);
        let mut counts = [0u32; 16];
        for _ in 0..20_000 {
            counts[r.zipf(16, 1.2)] += 1;
        }
        assert!(counts[0] > counts[8], "zipf should favour index 0");
        assert!(counts[0] > counts[15] * 3);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut r = DetRng::new(23);
        let mut counts = vec![0u32; 8];
        for _ in 0..16_000 {
            counts[r.zipf(8, 0.0)] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "count {c} deviates from uniform");
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = DetRng::new(29);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(31);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<u32>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn permutation_has_no_fixpoints() {
        let mut r = DetRng::new(37);
        for n in [2usize, 3, 8, 64] {
            let p = r.permutation_no_fixpoint(n);
            assert_eq!(p.len(), n);
            for (i, &dst) in p.iter().enumerate() {
                assert_ne!(i, dst);
            }
        }
        assert_eq!(r.permutation_no_fixpoint(1), vec![0]);
    }

    #[test]
    fn fill_bytes_works_for_odd_lengths() {
        let mut r = DetRng::new(41);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
