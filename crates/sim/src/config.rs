//! Simulation configuration.
//!
//! Every experiment is described by a [`SimConfig`] (engine-level knobs) that
//! higher layers embed into their own configuration structs. Keeping it
//! serde-serialisable lets the benchmark harness dump the exact configuration
//! next to each result, which is what makes the numbers in `EXPERIMENTS.md`
//! reproducible.

use crate::json::{self, JsonError};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Engine-level configuration shared by all experiments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed for all randomness in the run.
    pub seed: u64,
    /// Hard simulation horizon; events after this instant are not processed.
    pub horizon: SimTime,
    /// Upper bound on processed events, as a livelock guard (`u64::MAX` to
    /// disable).
    pub event_budget: u64,
    /// Free-form label recorded alongside results.
    pub label: String,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            horizon: SimTime::from_millis(100),
            event_budget: u64::MAX,
            label: String::new(),
        }
    }
}

impl SimConfig {
    /// Creates a config with the given seed and the default horizon.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }

    /// Sets the horizon, returning the modified config.
    pub fn horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the label, returning the modified config.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the event budget, returning the modified config.
    pub fn event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Serialises the config to a JSON string (used by the experiment
    /// harness to record run provenance).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"seed\": {},\n  \"horizon_ps\": {},\n  \"event_budget\": {},\n  \"label\": \"{}\"\n}}",
            self.seed,
            self.horizon.as_picos(),
            self.event_budget,
            json::escape(&self.label),
        )
    }

    /// Parses a config from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let doc = json::parse(s)?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| JsonError::schema(format!("missing field \"{key}\"")))
        };
        let number = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| JsonError::schema(format!("field \"{key}\" must be a u64")))
        };
        Ok(SimConfig {
            seed: number("seed")?,
            horizon: SimTime::from_picos(number("horizon_ps")?),
            event_budget: number("event_budget")?,
            label: field("label")?
                .as_str()
                .ok_or_else(|| JsonError::schema("field \"label\" must be a string"))?
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = SimConfig::default();
        assert_eq!(c.seed, 1);
        assert!(c.horizon > SimTime::ZERO);
        assert_eq!(c.event_budget, u64::MAX);
    }

    #[test]
    fn builder_methods_chain() {
        let c = SimConfig::with_seed(42)
            .horizon(SimTime::from_secs(1))
            .label("fig1")
            .event_budget(1000);
        assert_eq!(c.seed, 42);
        assert_eq!(c.horizon, SimTime::from_secs(1));
        assert_eq!(c.label, "fig1");
        assert_eq!(c.event_budget, 1000);
    }

    #[test]
    fn json_round_trip() {
        let c = SimConfig::with_seed(7).label("round-trip");
        let json = c.to_json();
        let back = SimConfig::from_json(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(SimConfig::from_json("not json").is_err());
    }
}
