//! # rackfabric-sim
//!
//! A deterministic discrete-event simulation (DES) engine used as the
//! substrate for the `rackfabric` reproduction of *"High speed adaptive
//! rack-scale fabrics"* (SIGCOMM 2018).
//!
//! The paper evaluates its architecture in omnet++; this crate plays the same
//! role: it advances simulated time, delivers events in timestamp order, and
//! collects statistics. It is deliberately single threaded so that every run
//! with the same seed and configuration is bit-for-bit reproducible.
//!
//! ## Overview
//!
//! * [`time`] — picosecond-resolution [`SimTime`]/[`SimDuration`] arithmetic.
//! * [`units`] — physical units (bit rates, lengths, power) and the
//!   conversions into simulated durations (serialization, propagation).
//! * [`event`] — the [`Model`] trait implemented by anything
//!   the engine can drive, and the [`Context`] handed to it.
//! * [`queue`] — the [`Scheduler`] trait and the
//!   reference binary-heap pending-event set with FIFO tie-breaking.
//! * [`calendar`] — the two-level calendar-queue scheduler, the default
//!   engine since the hot-path refactor.
//! * [`engine`] — the [`Simulator`] main loop, generic
//!   over the scheduler.
//! * [`rng`] — a self-contained, versioned deterministic RNG plus the
//!   distributions the workloads need.
//! * [`stats`] — counters, histograms, time-weighted gauges, rate meters and
//!   series recorders used for every experiment's output.
//! * [`config`] — serde-serialisable simulation configuration.
//! * [`windowed`] — conservative time-window execution of sharded models:
//!   per-shard calendar queues, content-keyed event ordering, outbox
//!   mailboxes exchanged at barriers, and a sync hook for global control.
//! * [`json`] — a minimal dependency-free JSON reader/writer used for run
//!   provenance and scenario-matrix exports.
//!
//! ## Quick example
//!
//! ```
//! use rackfabric_sim::prelude::*;
//!
//! /// A model that counts ticks until the simulation horizon.
//! struct Ticker { period: SimDuration, ticks: u64 }
//!
//! #[derive(Debug, Clone, PartialEq, Eq)]
//! struct Tick;
//!
//! impl Model for Ticker {
//!     type Event = Tick;
//!     fn init(&mut self, ctx: &mut Context<Tick>) {
//!         ctx.schedule_in(self.period, Tick);
//!     }
//!     fn handle(&mut self, ctx: &mut Context<Tick>, _ev: Tick) {
//!         self.ticks += 1;
//!         ctx.schedule_in(self.period, Tick);
//!     }
//! }
//!
//! let mut sim = Simulator::new(Ticker { period: SimDuration::from_nanos(100), ticks: 0 }, 42);
//! sim.run_until(SimTime::from_micros(1));
//! assert_eq!(sim.model().ticks, 10);
//! ```

pub mod calendar;
pub mod config;
pub mod engine;
pub mod event;
pub mod json;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;
pub mod windowed;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::calendar::CalendarQueue;
    pub use crate::config::SimConfig;
    pub use crate::engine::{HeapSimulator, RunOutcome, SchedulerKind, Simulator};
    pub use crate::event::{Context, Model};
    pub use crate::queue::{EventQueue, Scheduler};
    pub use crate::rng::DetRng;
    pub use crate::stats::{Counter, Histogram, RateMeter, Series, Summary, TimeWeighted};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::units::{BitRate, Bytes, Energy, Length, Power};
    pub use crate::windowed::{ShardModel, SyncHook, WindowCtx, WindowedOutcome, WindowedSim};
}

pub use calendar::CalendarQueue;
pub use config::SimConfig;
pub use engine::{HeapSimulator, RunOutcome, SchedulerKind, Simulator};
pub use event::{Context, Model};
pub use queue::{EventQueue, Scheduler};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
