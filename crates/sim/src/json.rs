//! A minimal, dependency-free JSON reader/writer.
//!
//! The build environment has no registry access, so `serde_json` is not
//! available; this module covers the repository's actual JSON needs instead:
//! recording run provenance next to experiment results ([`crate::config`])
//! and exporting scenario-matrix aggregates (`rackfabric-scenario`). Numbers
//! keep their source text so `u64` values (e.g. an event budget of
//! `u64::MAX`) round-trip exactly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text for lossless integer round-trips.
    Number(String),
    /// A string (already unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as `u64`, if it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The fields of an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// A parse (or schema) error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input, when known.
    pub offset: usize,
}

impl JsonError {
    /// An error not tied to a source position (e.g. a missing field).
    pub fn schema(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it parses back as a JSON number (no NaN/inf, which
/// JSON cannot represent; those become `null`-safe zeros at a higher level).
pub fn number(value: f64) -> String {
    if value.is_finite() {
        let s = format!("{value}");
        // `{}` on a whole f64 prints no decimal point; keep it a number either way.
        s
    } else {
        "0".to_string()
    }
}

/// Renders a value as **canonical JSON**: compact (no whitespace), object
/// keys sorted lexicographically by their UTF-8 bytes, numbers kept as their
/// source text. Two structurally equal documents always canonicalise to the
/// same byte string, which is what the content-addressed result store in
/// `rackfabric-sweep` hashes to key simulation results.
pub fn canonical(value: &JsonValue) -> String {
    let mut out = String::new();
    write_canonical(value, &mut out);
    out
}

fn write_canonical(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(raw) => out.push_str(raw),
        JsonValue::String(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(fields) => {
            let mut order: Vec<usize> = (0..fields.len()).collect();
            order.sort_by(|&a, &b| fields[a].0.as_bytes().cmp(fields[b].0.as_bytes()));
            out.push('{');
            for (i, &idx) in order.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let (key, field) = &fields[idx];
                out.push('"');
                out.push_str(&escape(key));
                out.push_str("\":");
                write_canonical(field, out);
            }
            out.push('}');
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if raw.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(JsonValue::Number(raw.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not combined; this suffices for
                            // the BMP content the repo writes.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn u64_max_round_trips() {
        let doc = format!("{{\"v\": {}}}", u64::MAX);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("v").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "quote \" backslash \\ newline \n tab \t unicode é";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn canonical_sorts_keys_and_strips_whitespace() {
        let a = parse(r#"{"b": 1, "a": {"y": [1, 2], "x": null}}"#).unwrap();
        let b = parse(r#"{ "a": { "x": null, "y": [1,2] }, "b": 1 }"#).unwrap();
        assert_eq!(canonical(&a), canonical(&b));
        assert_eq!(canonical(&a), r#"{"a":{"x":null,"y":[1,2]},"b":1}"#);
        // Canonical text parses back to an equal-up-to-ordering document.
        assert_eq!(
            parse(&canonical(&a)).unwrap().get("b").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn number_formatting_is_parseable() {
        for v in [0.0, 1.5, -2.25, 1e12, f64::NAN, f64::INFINITY] {
            let s = number(v);
            assert!(s.parse::<f64>().unwrap().is_finite());
        }
    }
}
