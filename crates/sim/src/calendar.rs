//! A two-level calendar-queue scheduler.
//!
//! Discrete-event simulators spend a large share of their cycles in the
//! pending-event set; a binary heap pays `O(log n)` pointer-chasing per
//! operation. A calendar queue exploits the fact that most events are
//! scheduled a short, bounded distance into the future (serialization
//! delays, per-hop propagation, control epochs) and buckets them by arrival
//! window instead:
//!
//! * **Near level** — a power-of-two ring of buckets, each spanning a fixed
//!   window of simulated time (the *bucket width*). Scheduling into the ring
//!   is an index computation and a `Vec::push`: amortised `O(1)`.
//! * **Far level** — events beyond the ring's coverage go to an overflow
//!   binary heap and migrate into the ring as the cursor sweeps forward.
//!
//! The bucket currently being drained is kept as a small binary heap ordered
//! by `(time, EventId)`, so delivery order is **identical** to
//! [`EventQueue`](crate::queue::EventQueue): strictly increasing `(time, id)`
//! across the whole run. Determinism does not depend on the geometry; bucket
//! width and count only affect speed. The equivalence is property-tested in
//! `tests/scheduler_equivalence.rs`.
//!
//! Cancellation follows the same lazy scheme as the heap queue: a pending-id
//! set makes `cancel` exact (delivered ids report false), and a cancelled-id
//! set lets entries be discarded when their bucket is drained.

use crate::event::EventId;
use crate::queue::{Entry, IdSet, Scheduler};
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// Default log2 of the bucket width in picoseconds: 2^16 ps ≈ 65.5 ns, a few
/// MTU serialization times at 100 Gb/s.
const DEFAULT_WIDTH_SHIFT: u32 = 16;
/// Default log2 of the bucket count: 2048 buckets ≈ 134 µs of coverage,
/// comfortably past the control-epoch and retry timescales of the fabric.
const DEFAULT_BUCKET_SHIFT: u32 = 11;

/// A two-level calendar/timing-wheel scheduler. See the module docs.
pub struct CalendarQueue<E> {
    /// Future near-level buckets; each holds one window's entries, unsorted.
    buckets: Vec<Vec<Entry<E>>>,
    /// The bucket currently being drained, as a `(time, id)` min-heap.
    current: BinaryHeap<Entry<E>>,
    /// Start (inclusive) of the current bucket's window, in picoseconds.
    cursor_start: u64,
    /// First instant (exclusive) covered by the ring; entries at or beyond
    /// it overflow into `far`.
    far_horizon: u64,
    /// Overflow heap for the far future.
    far: BinaryHeap<Entry<E>>,
    /// Entries sitting in `buckets` (excluding `current` and `far`),
    /// including not-yet-pruned cancelled ones.
    near_count: usize,
    /// Ids cancelled while still stored; pruned on pop.
    cancelled: IdSet,
    /// Ids scheduled and not yet delivered or cancelled.
    pending: IdSet,
    /// log2 of the bucket width in picoseconds.
    width_shift: u32,
    /// `buckets.len() - 1`; bucket count is a power of two.
    index_mask: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates a calendar queue with the default geometry (65.5 ns buckets,
    /// 134 µs of near-level coverage).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_WIDTH_SHIFT, DEFAULT_BUCKET_SHIFT)
    }

    /// Creates a calendar queue with `2^width_shift` picoseconds per bucket
    /// and `2^bucket_shift` buckets. Geometry affects speed only, never
    /// delivery order.
    pub fn with_geometry(width_shift: u32, bucket_shift: u32) -> Self {
        assert!(width_shift < 48, "bucket width out of range");
        assert!(
            (1..=20).contains(&bucket_shift),
            "bucket count out of range"
        );
        let count = 1usize << bucket_shift;
        let mut buckets = Vec::with_capacity(count);
        buckets.resize_with(count, Vec::new);
        CalendarQueue {
            buckets,
            current: BinaryHeap::new(),
            cursor_start: 0,
            far_horizon: horizon_for(0, width_shift, count as u64),
            far: BinaryHeap::new(),
            near_count: 0,
            cancelled: IdSet::default(),
            pending: IdSet::default(),
            width_shift,
            index_mask: count as u64 - 1,
        }
    }

    /// Peeks the earliest pending entry's `(time, id)` without popping it,
    /// pruning lazily-cancelled heads like
    /// [`peek_time`](crate::queue::Scheduler::peek_time). The windowed
    /// engine uses the id (a content key there) to merge two queues with
    /// the exact `(time, key)` tie-break order a single queue would give.
    pub fn peek_entry(&mut self) -> Option<(SimTime, EventId)> {
        loop {
            while let Some(head) = self.current.peek() {
                if self.cancelled.contains(&head.id) {
                    let entry = self.current.pop().expect("peeked entry must pop");
                    self.cancelled.remove(&entry.id);
                    continue;
                }
                return Some((head.at, head.id));
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Width of one bucket in picoseconds.
    #[inline]
    fn width(&self) -> u64 {
        1u64 << self.width_shift
    }

    /// End (exclusive) of the current bucket's window.
    #[inline]
    fn current_window_end(&self) -> u64 {
        self.cursor_start.saturating_add(self.width())
    }

    /// The ring slot owning instant `t` (valid only for `t < far_horizon`).
    #[inline]
    fn slot_of(&self, t: u64) -> usize {
        ((t >> self.width_shift) & self.index_mask) as usize
    }

    /// Stores an entry in whichever level owns its timestamp. Entries at or
    /// before the current window go straight into the drain heap, which
    /// keeps out-of-order pushes (and same-instant re-schedules) correct.
    fn place(&mut self, entry: Entry<E>) {
        let t = entry.at.as_picos();
        if t < self.current_window_end() {
            self.current.push(entry);
        } else if t < self.far_horizon {
            let slot = self.slot_of(t);
            self.buckets[slot].push(entry);
            self.near_count += 1;
        } else {
            self.far.push(entry);
        }
    }

    /// Migrates far-heap entries whose time has come under the ring horizon.
    fn drain_far(&mut self) {
        while let Some(head) = self.far.peek() {
            if head.at.as_picos() >= self.far_horizon {
                break;
            }
            let entry = self.far.pop().expect("peeked entry must pop");
            self.place(entry);
        }
    }

    /// Advances to the next non-empty region, filling `current`. Returns
    /// false when nothing is stored anywhere. Does not deliver events, so it
    /// is safe to call from `peek_time`.
    fn advance(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        loop {
            if self.near_count == 0 {
                // The ring is empty: jump the wheel straight to the earliest
                // far entry instead of sweeping empty buckets.
                let Some(head) = self.far.peek() else {
                    return false;
                };
                let base = head.at.as_picos() >> self.width_shift;
                self.cursor_start = base << self.width_shift;
                self.far_horizon =
                    horizon_for(self.cursor_start, self.width_shift, self.index_mask + 1);
                self.drain_far();
                if self.current.is_empty() {
                    // Pathological timestamps at or beyond the saturated
                    // horizon (e.g. SimTime::MAX) cannot be placed in the
                    // ring; drain them straight into the current heap.
                    let entry = self.far.pop().expect("far head exists");
                    self.current.push(entry);
                }
                return true;
            }
            // Sweep forward one bucket. The slot just vacated becomes the
            // ring's new farthest window, so pull any far entries that now
            // fit under the horizon.
            self.cursor_start = self.cursor_start.saturating_add(self.width());
            self.far_horizon = self.far_horizon.saturating_add(self.width());
            self.drain_far();
            let slot = self.slot_of(self.cursor_start);
            if !self.buckets[slot].is_empty() {
                let v = std::mem::take(&mut self.buckets[slot]);
                self.near_count -= v.len();
                self.current = v.into();
                return true;
            }
        }
    }
}

fn horizon_for(start: u64, width_shift: u32, bucket_count: u64) -> u64 {
    (start >> width_shift)
        .saturating_add(bucket_count)
        .saturating_mul(1u64 << width_shift)
}

impl<E> Scheduler<E> for CalendarQueue<E> {
    fn push(&mut self, at: SimTime, id: EventId, event: E) {
        self.pending.insert(id);
        self.place(Entry { at, id, event });
    }

    fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        loop {
            while let Some(entry) = self.current.pop() {
                if self.cancelled.remove(&entry.id) {
                    continue;
                }
                self.pending.remove(&entry.id);
                return Some((entry.at, entry.id, entry.event));
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            while let Some(head) = self.current.peek() {
                if self.cancelled.contains(&head.id) {
                    let entry = self.current.pop().expect("peeked entry must pop");
                    self.cancelled.remove(&entry.id);
                    continue;
                }
                return Some(head.at);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.current.clear();
        self.far.clear();
        self.near_count = 0;
        self.cancelled.clear();
        self.pending.clear();
        self.cursor_start = 0;
        self.far_horizon = horizon_for(0, self.width_shift, self.index_mask + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order_within_one_bucket() {
        let mut q = CalendarQueue::new();
        q.push(t(30), EventId(2), "c");
        q.push(t(10), EventId(0), "a");
        q.push(t(20), EventId(1), "b");
        assert_eq!(q.pop().unwrap().2, "a");
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.pop().unwrap().2, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_timestamps_are_fifo_by_id() {
        let mut q = CalendarQueue::new();
        q.push(t(5), EventId(7), "second");
        q.push(t(5), EventId(3), "first");
        q.push(t(5), EventId(9), "third");
        assert_eq!(q.pop().unwrap().2, "first");
        assert_eq!(q.pop().unwrap().2, "second");
        assert_eq!(q.pop().unwrap().2, "third");
    }

    #[test]
    fn orders_across_buckets_and_far_overflow() {
        // Times span many bucket windows and far past the ring horizon.
        let mut q = CalendarQueue::with_geometry(10, 3); // 1 ns buckets, 8 of them
        let times = [5u64, 900, 3, 44_000, 7, 1_000_000, 2, 512, 100_000];
        for (i, &ns) in times.iter().enumerate() {
            q.push(t(ns), EventId(i as u64), ns);
        }
        let mut sorted = times;
        sorted.sort();
        for &expect in &sorted {
            let (at, _, v) = q.pop().unwrap();
            assert_eq!(v, expect);
            assert_eq!(at, t(expect));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancellation_and_delivered_id_semantics() {
        let mut q = CalendarQueue::new();
        q.push(t(1), EventId(0), "keep");
        q.push(t(2), EventId(1), "drop");
        q.push(t(3), EventId(2), "keep2");
        assert!(q.cancel(EventId(1)));
        assert!(!q.cancel(EventId(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().2, "keep");
        // Delivered ids must not cancel (the EventQueue regression, mirrored).
        assert!(!q.cancel(EventId(0)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "keep2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_prunes_cancelled_heads() {
        let mut q = CalendarQueue::new();
        q.push(t(1), EventId(0), 1u32);
        q.push(t(2), EventId(1), 2u32);
        q.cancel(EventId(0));
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().unwrap().2, 2);
    }

    #[test]
    fn cancelled_entry_in_far_future_is_skipped() {
        let mut q = CalendarQueue::with_geometry(10, 3);
        q.push(t(1), EventId(0), "now");
        q.push(t(10_000_000), EventId(1), "far");
        q.push(t(20_000_000), EventId(2), "farther");
        q.cancel(EventId(1));
        assert_eq!(q.pop().unwrap().2, "now");
        assert_eq!(q.pop().unwrap().2, "farther");
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = CalendarQueue::with_geometry(10, 3);
        for i in 0..100u64 {
            q.push(t(i * 1000), EventId(i), i);
        }
        assert_eq!(q.len(), 100);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        // Still usable after clear.
        q.push(t(5), EventId(1000), 7u64);
        assert_eq!(q.pop().unwrap().2, 7);
    }

    #[test]
    fn interleaved_push_pop_matches_heap_queue() {
        // A deterministic pseudo-random workload driven against both
        // schedulers must produce the same delivery sequence.
        let mut cal = CalendarQueue::with_geometry(12, 4);
        let mut heap = EventQueue::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut id = 0u64;
        let mut clock = 0u64;
        for _ in 0..2000 {
            match next(4) {
                0 | 1 => {
                    let at = t(clock + next(500_000));
                    cal.push(at, EventId(id), id);
                    heap.push(at, EventId(id), id);
                    id += 1;
                }
                2 => {
                    if id > 0 {
                        let victim = EventId(next(id));
                        assert_eq!(cal.cancel(victim), heap.cancel(victim));
                    }
                }
                _ => {
                    let a = cal.pop();
                    let b = heap.pop();
                    match (&a, &b) {
                        (Some((ta, ia, _)), Some((tb, ib, _))) => {
                            assert_eq!((ta, ia), (tb, ib));
                            clock = ta.as_picos() / 1000;
                        }
                        (None, None) => {}
                        _ => panic!("one scheduler drained before the other"),
                    }
                }
            }
            assert_eq!(cal.len(), heap.len());
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            match (&a, &b) {
                (Some((ta, ia, _)), Some((tb, ib, _))) => assert_eq!((ta, ia), (tb, ib)),
                (None, None) => break,
                _ => panic!("one scheduler drained before the other"),
            }
        }
    }
}
