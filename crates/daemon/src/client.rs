//! A small blocking client for the daemon protocol, used by the test
//! harness, the load generator and the CLI's remote mode.
//!
//! One request per connection: the client connects, writes one canonical
//! request line, reads event lines until the terminal one, and disconnects.
//! Stateless connections keep the client trivially thread-safe (clone one
//! per thread) and make every timeout local to one request. All socket
//! reads are bounded by the client's timeout — a wedged daemon produces an
//! error, never a hung test.

use crate::proto::{Event, Request, StatusCounts};
use rackfabric_cmd::command::Command;
use rackfabric_sim::json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Blocking protocol client. Cheap to clone; one connection per call.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

/// The full account of one submitted job.
#[derive(Debug, Clone)]
pub struct SubmitReply {
    /// Job id assigned (or attached to) by the daemon.
    pub job: String,
    /// True when the store answered with zero executions.
    pub cached: bool,
    /// The result payload as one canonical JSON line — the byte string the
    /// determinism harness compares against the batch path.
    pub result_json: String,
    /// Every event line observed, verbatim, in order (diagnostics).
    pub events: Vec<String>,
}

impl Client {
    /// A client for the daemon at `addr` with a per-request timeout.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Client {
        Client { addr, timeout }
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    fn send(&self, request: &Request) -> io::Result<(TcpStream, String)> {
        let mut stream = self.connect()?;
        let mut line = request.canonical_json();
        line.push('\n');
        stream.write_all(line.as_bytes())?;
        Ok((stream, line))
    }

    /// Submits `command` and blocks until its terminal event. Cancellation
    /// and failure come back as errors carrying the event's reason.
    pub fn submit(&self, tenant: &str, priority: i64, command: Command) -> io::Result<SubmitReply> {
        let (stream, _) = self.send(&Request::Submit {
            tenant: tenant.to_string(),
            priority,
            command,
        })?;
        let mut events = Vec::new();
        let mut job = String::new();
        for line in BufReader::new(stream).lines() {
            let line = line?;
            events.push(line.clone());
            let Some(event) = Event::from_line(&line) else {
                return Err(bad_reply(&line));
            };
            match event {
                Event::Accepted { job: id } => job = id,
                Event::Started { .. } => {}
                Event::Done {
                    job: id,
                    cached,
                    result,
                } => {
                    return Ok(SubmitReply {
                        job: id,
                        cached,
                        result_json: json::canonical(&result),
                        events,
                    })
                }
                Event::Rejected { reason } => {
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        format!("rejected: {reason}"),
                    ))
                }
                Event::Cancelled { .. } => {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("job {job} cancelled"),
                    ))
                }
                Event::Error { reason, .. } => {
                    return Err(io::Error::other(format!("job {job} failed: {reason}")))
                }
                other => {
                    return Err(bad_reply(&other.canonical_json()));
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a terminal event",
        ))
    }

    /// Requests cancellation of `job`. `Ok(true)` when the daemon accepted
    /// it, `Ok(false)` for unknown/finished jobs.
    pub fn cancel(&self, job: &str) -> io::Result<bool> {
        match self.roundtrip(&Request::Cancel {
            job: job.to_string(),
        })? {
            Event::Cancelled { .. } => Ok(true),
            Event::Error { .. } => Ok(false),
            other => Err(bad_reply(&other.canonical_json())),
        }
    }

    /// Fetches the scheduler counters.
    pub fn status(&self) -> io::Result<StatusCounts> {
        match self.roundtrip(&Request::Status)? {
            Event::Status(counts) => Ok(counts),
            other => Err(bad_reply(&other.canonical_json())),
        }
    }

    /// Asks the daemon to drain and stop.
    pub fn shutdown(&self) -> io::Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Event::ShuttingDown => Ok(()),
            other => Err(bad_reply(&other.canonical_json())),
        }
    }

    /// One request, one event line back.
    fn roundtrip(&self, request: &Request) -> io::Result<Event> {
        let (stream, _) = self.send(request)?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        let line = line.trim_end();
        Event::from_line(line).ok_or_else(|| bad_reply(line))
    }
}

fn bad_reply(line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected daemon reply: {line}"),
    )
}

/// Extracts the canonical `result` line from a raw `done` event line —
/// what byte-for-byte comparisons against the batch path use. `None` when
/// the line is not a `done` event.
pub fn done_result_bytes(line: &str) -> Option<String> {
    match Event::from_line(line)? {
        Event::Done { result, .. } => Some(json::canonical(&result)),
        _ => None,
    }
}
