//! The job scheduler: a bounded priority queue with single-flight dedup,
//! cancellation and completion watching, shared between connection threads
//! (producers) and the worker pool (consumers).
//!
//! Everything lives behind one `Mutex` + `Condvar` pair. The lock covers
//! only bookkeeping — never an engine execution — so contention stays
//! proportional to request rate, not job cost.
//!
//! ## Single-flight dedup
//!
//! Two tenants submitting the **same** command concurrently must not burn
//! the engine twice: the store would deduplicate the persisted result
//! anyway, but both executions would still run. The scheduler keys every
//! queued/active job by its command's canonical JSON; a submission matching
//! an in-flight job *attaches* to it — same job id, same terminal event,
//! one execution. (Once a job completes its key is released: a later
//! identical submission schedules normally and is answered by the store as
//! a warm hit.)
//!
//! ## Ordering
//!
//! Workers take the highest `priority` first, ties in arrival order. The
//! queue is bounded: past `max_queue` waiting jobs, submissions are
//! rejected immediately (backpressure beats unbounded latency).

use crate::proto::StatusCounts;
use rackfabric_cmd::command::Command;
use rackfabric_sim::json::JsonValue;
use rackfabric_sweep::cancel::CancelToken;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a job ended, with its payload when it produced one.
#[derive(Debug, Clone)]
pub enum JobEnd {
    /// Finished; `cached` is true when the store answered with zero
    /// executions, `result` is the canonical payload.
    Done {
        /// Zero engine executions.
        cached: bool,
        /// Canonical structured result.
        result: JsonValue,
    },
    /// Cancelled before or during execution.
    Cancelled,
    /// Failed with a reason.
    Failed(String),
}

/// Job lifecycle, advanced monotonically.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Active,
    Ended(JobEnd),
}

/// What a submission got.
#[derive(Debug, Clone)]
pub enum Submitted {
    /// Enqueued as a fresh job.
    Enqueued(u64),
    /// Attached to an identical in-flight job.
    Attached(u64),
    /// Refused (queue full or shutting down).
    Rejected(String),
}

impl Submitted {
    /// The job id, when the submission was accepted either way.
    pub fn job_id(&self) -> Option<u64> {
        match self {
            Submitted::Enqueued(id) | Submitted::Attached(id) => Some(*id),
            Submitted::Rejected(_) => None,
        }
    }
}

/// One phase observed by a completion watcher.
#[derive(Debug, Clone)]
pub enum Observed {
    /// The job reached a worker.
    Started,
    /// The job reached a terminal state.
    Ended(JobEnd),
}

struct JobEntry {
    priority: i64,
    seq: u64,
    tenant: String,
    command: Command,
    state: JobState,
    cancel: CancelToken,
    enqueued_at: Instant,
}

#[derive(Default)]
struct State {
    jobs: BTreeMap<u64, JobEntry>,
    /// Queued job ids (selection scans for max priority / min seq; queues
    /// are short — bounded — so a scan beats a fancier structure).
    queue: Vec<u64>,
    /// Canonical command JSON -> in-flight (queued or active) job id.
    inflight: BTreeMap<String, u64>,
    next_id: u64,
    active: u64,
    completed: u64,
    warm_hits: u64,
    rejected: u64,
    cancelled: u64,
    dedup_attached: u64,
    shutting_down: bool,
}

/// The shared scheduler. All methods are callable from any thread.
pub struct Scheduler {
    state: Mutex<State>,
    /// Signalled on every state change: workers waiting for jobs and
    /// watchers waiting for phases both park here.
    changed: Condvar,
    max_queue: usize,
}

impl Scheduler {
    /// A scheduler admitting at most `max_queue` waiting jobs.
    pub fn new(max_queue: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(State::default()),
            changed: Condvar::new(),
            max_queue: max_queue.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("scheduler lock poisoned")
    }

    /// Submits a command. Identical in-flight commands coalesce into one
    /// job; a full queue or a draining daemon rejects.
    pub fn submit(&self, tenant: &str, priority: i64, command: Command) -> Submitted {
        self.submit_with_token(tenant, priority, command, CancelToken::new())
    }

    /// [`Scheduler::submit`] with a caller-supplied cancel token — the
    /// embedding hook the determinism harness uses to interrupt a campaign
    /// at an exact job boundary (`CancelToken::after_checks`) instead of
    /// racing a cancel request against the worker.
    pub fn submit_with_token(
        &self,
        tenant: &str,
        priority: i64,
        command: Command,
        cancel: CancelToken,
    ) -> Submitted {
        let key = command.canonical_json();
        let mut state = self.lock();
        if state.shutting_down {
            state.rejected += 1;
            return Submitted::Rejected("shutting down".to_string());
        }
        if let Some(&id) = state.inflight.get(&key) {
            state.dedup_attached += 1;
            return Submitted::Attached(id);
        }
        if state.queue.len() >= self.max_queue {
            state.rejected += 1;
            return Submitted::Rejected("queue full".to_string());
        }
        state.next_id += 1;
        let id = state.next_id;
        state.jobs.insert(
            id,
            JobEntry {
                priority,
                seq: id,
                tenant: tenant.to_string(),
                command,
                state: JobState::Queued,
                cancel,
                enqueued_at: Instant::now(),
            },
        );
        state.queue.push(id);
        state.inflight.insert(key, id);
        self.changed.notify_all();
        Submitted::Enqueued(id)
    }

    /// Blocks until a job is available (returning it with its cancel token
    /// and tenant) or the daemon is draining with an empty queue (`None`).
    pub fn next_job(&self) -> Option<(u64, String, Command, CancelToken)> {
        let mut state = self.lock();
        loop {
            if let Some(pos) = best_queued(&state) {
                let id = state.queue.swap_remove(pos);
                let entry = state.jobs.get_mut(&id).expect("queued job exists");
                entry.state = JobState::Active;
                let picked = (
                    id,
                    entry.tenant.clone(),
                    entry.command.clone(),
                    entry.cancel.clone(),
                );
                state.active += 1;
                self.changed.notify_all();
                return Some(picked);
            }
            if state.shutting_down {
                return None;
            }
            state = self.changed.wait(state).expect("scheduler lock poisoned");
        }
    }

    /// Marks an active job terminal and wakes its watchers. Returns the
    /// job's total residence time (enqueue -> completion).
    pub fn complete(&self, id: u64, end: JobEnd) -> Duration {
        let mut state = self.lock();
        let key = state
            .jobs
            .get(&id)
            .map(|entry| entry.command.canonical_json());
        if let Some(key) = key {
            if state.inflight.get(&key) == Some(&id) {
                state.inflight.remove(&key);
            }
        }
        state.active = state.active.saturating_sub(1);
        state.completed += 1;
        match &end {
            JobEnd::Done { cached: true, .. } => state.warm_hits += 1,
            JobEnd::Cancelled => state.cancelled += 1,
            _ => {}
        }
        let entry = state.jobs.get_mut(&id).expect("completed job exists");
        let residence = entry.enqueued_at.elapsed();
        entry.state = JobState::Ended(end);
        self.changed.notify_all();
        residence
    }

    /// Cancels a job: queued jobs drop to `Cancelled` immediately; an
    /// active job's token trips (its campaign interrupts at the next job
    /// boundary and completes as cancelled). Returns false for unknown or
    /// already-terminal jobs.
    pub fn cancel(&self, id: u64) -> bool {
        let mut state = self.lock();
        let key = match state.jobs.get(&id) {
            None => return false,
            Some(entry) => {
                entry.cancel.cancel();
                match entry.state {
                    JobState::Queued => entry.command.canonical_json(),
                    JobState::Active => return true,
                    JobState::Ended(_) => return false,
                }
            }
        };
        if state.inflight.get(&key) == Some(&id) {
            state.inflight.remove(&key);
        }
        state.queue.retain(|&q| q != id);
        let entry = state.jobs.get_mut(&id).expect("checked above");
        entry.state = JobState::Ended(JobEnd::Cancelled);
        state.completed += 1;
        state.cancelled += 1;
        self.changed.notify_all();
        true
    }

    /// Waits (bounded by `timeout`) for the job's next phase after
    /// `saw_started`: `Started` once a worker picks it up, then `Ended`.
    /// `None` on timeout or unknown id.
    pub fn watch(&self, id: u64, saw_started: bool, timeout: Duration) -> Option<Observed> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            match state.jobs.get(&id).map(|entry| &entry.state) {
                None => return None,
                Some(JobState::Ended(end)) => return Some(Observed::Ended(end.clone())),
                Some(JobState::Active) if !saw_started => return Some(Observed::Started),
                _ => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = self
                .changed
                .wait_timeout(state, deadline - now)
                .expect("scheduler lock poisoned");
            state = next;
            if timed_out.timed_out() {
                // Check once more under the lock before giving up.
                match state.jobs.get(&id).map(|entry| &entry.state) {
                    Some(JobState::Ended(end)) => return Some(Observed::Ended(end.clone())),
                    Some(JobState::Active) if !saw_started => return Some(Observed::Started),
                    _ => return None,
                }
            }
        }
    }

    /// Begins draining: submissions reject, queued jobs cancel, active
    /// jobs' tokens trip, idle workers wake up and exit.
    pub fn shutdown(&self) {
        let mut state = self.lock();
        state.shutting_down = true;
        let queued: Vec<u64> = state.queue.drain(..).collect();
        for id in queued {
            let key = state.jobs[&id].command.canonical_json();
            if state.inflight.get(&key) == Some(&id) {
                state.inflight.remove(&key);
            }
            let entry = state.jobs.get_mut(&id).expect("queued job exists");
            entry.cancel.cancel();
            entry.state = JobState::Ended(JobEnd::Cancelled);
            state.completed += 1;
            state.cancelled += 1;
        }
        let tokens: Vec<CancelToken> = state
            .jobs
            .values()
            .filter(|entry| matches!(entry.state, JobState::Active))
            .map(|entry| entry.cancel.clone())
            .collect();
        for token in tokens {
            token.cancel();
        }
        self.changed.notify_all();
    }

    /// True once [`Scheduler::shutdown`] ran.
    pub fn is_shutting_down(&self) -> bool {
        self.lock().shutting_down
    }

    /// Current counters (for `status` replies and diagnostics).
    pub fn counts(&self) -> StatusCounts {
        let state = self.lock();
        StatusCounts {
            queued: state.queue.len() as u64,
            active: state.active,
            completed: state.completed,
            warm_hits: state.warm_hits,
            rejected: state.rejected,
            cancelled: state.cancelled,
            dedup_attached: state.dedup_attached,
        }
    }

    /// Current queue depth (gauge feed).
    pub fn queue_depth(&self) -> u64 {
        self.lock().queue.len() as u64
    }

    /// Currently active jobs (gauge feed).
    pub fn active_jobs(&self) -> u64 {
        self.lock().active
    }
}

/// Index (into `state.queue`) of the best runnable job: max priority, ties
/// broken by arrival order.
fn best_queued(state: &State) -> Option<usize> {
    state
        .queue
        .iter()
        .enumerate()
        .max_by_key(|(_, &id)| {
            let entry = &state.jobs[&id];
            (entry.priority, std::cmp::Reverse(entry.seq))
        })
        .map(|(pos, _)| pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(seed: u64) -> Command {
        Command::RunScenario {
            spec_json: format!("{{\"seed\":{seed}}}"),
        }
    }

    #[test]
    fn priorities_order_dispatch_and_ties_keep_arrival_order() {
        let sched = Scheduler::new(16);
        let low = sched.submit("a", 1, cmd(1)).job_id().unwrap();
        let high = sched.submit("b", 5, cmd(2)).job_id().unwrap();
        let mid_first = sched.submit("c", 3, cmd(3)).job_id().unwrap();
        let mid_second = sched.submit("c", 3, cmd(4)).job_id().unwrap();
        let order: Vec<u64> = (0..4).map(|_| sched.next_job().unwrap().0).collect();
        assert_eq!(order, vec![high, mid_first, mid_second, low]);
    }

    #[test]
    fn identical_inflight_submissions_attach_to_one_job() {
        let sched = Scheduler::new(16);
        let first = sched.submit("a", 0, cmd(7));
        let id = first.job_id().unwrap();
        assert!(matches!(first, Submitted::Enqueued(_)));
        // Same command, different tenant: attaches, no new job.
        let second = sched.submit("b", 0, cmd(7));
        assert!(matches!(second, Submitted::Attached(got) if got == id));
        // Different command: fresh job.
        assert!(matches!(
            sched.submit("b", 0, cmd(8)),
            Submitted::Enqueued(_)
        ));
        assert_eq!(sched.counts().dedup_attached, 1);
        assert_eq!(sched.counts().queued, 2);

        // After completion the key is released: a resubmission enqueues.
        let (picked, _, _, _) = sched.next_job().unwrap();
        assert_eq!(picked, id);
        sched.complete(
            id,
            JobEnd::Done {
                cached: false,
                result: JsonValue::Null,
            },
        );
        assert!(matches!(
            sched.submit("a", 0, cmd(7)),
            Submitted::Enqueued(_)
        ));
    }

    #[test]
    fn backpressure_rejects_past_the_bound() {
        let sched = Scheduler::new(2);
        assert!(sched.submit("a", 0, cmd(1)).job_id().is_some());
        assert!(sched.submit("a", 0, cmd(2)).job_id().is_some());
        assert!(matches!(
            sched.submit("a", 0, cmd(3)),
            Submitted::Rejected(reason) if reason == "queue full"
        ));
        assert_eq!(sched.counts().rejected, 1);
    }

    #[test]
    fn cancel_drops_queued_jobs_and_trips_active_tokens() {
        let sched = Scheduler::new(16);
        let queued = sched.submit("a", 0, cmd(1)).job_id().unwrap();
        assert!(sched.cancel(queued));
        assert!(!sched.cancel(queued), "already terminal");
        match sched.watch(queued, true, Duration::from_secs(1)) {
            Some(Observed::Ended(JobEnd::Cancelled)) => {}
            other => panic!("expected cancelled, got {other:?}"),
        }

        let active = sched.submit("a", 0, cmd(2)).job_id().unwrap();
        let (id, _, _, token) = sched.next_job().unwrap();
        assert_eq!(id, active);
        assert!(!token.is_cancelled());
        assert!(sched.cancel(active));
        assert!(token.is_cancelled(), "active cancel trips the token");
    }

    #[test]
    fn shutdown_cancels_queued_and_wakes_workers() {
        let sched = std::sync::Arc::new(Scheduler::new(16));
        let waiter = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.next_job())
        };
        // Give the worker a moment to park, then drain.
        std::thread::sleep(Duration::from_millis(20));
        let queued = sched.submit("a", 0, cmd(1)).job_id();
        sched.shutdown();
        // The parked worker either picked the job up before the drain or
        // returns None after it; both are clean exits.
        let _ = waiter.join().unwrap();
        assert!(sched.is_shutting_down());
        assert!(matches!(
            sched.submit("a", 0, cmd(2)),
            Submitted::Rejected(_)
        ));
        if let Some(id) = queued {
            // Drained-queue jobs are observable as cancelled (unless the
            // racing worker took the job first, in which case it is active).
            match sched.watch(id, true, Duration::from_millis(200)) {
                Some(Observed::Ended(JobEnd::Cancelled)) | None => {}
                other => panic!("unexpected phase {other:?}"),
            }
        }
    }
}
