//! `rackfabricd` — the rack-fabric simulator as a long-running
//! multi-tenant service.
//!
//! The batch CLI executes one [`rackfabric_cmd::command::Command`] per
//! invocation; this crate keeps an [`rackfabric_cmd::executor::Executor`]
//! resident and serves the same instruction set over a line-delimited
//! canonical-JSON API on a localhost TCP socket:
//!
//! - [`proto`] — the wire protocol: requests (`submit`/`cancel`/`status`/
//!   `shutdown`) and events, each one canonical JSON line, so equal
//!   responses are byte-equal lines.
//! - [`sched`] — the scheduler: a bounded priority queue with single-flight
//!   deduplication (identical in-flight submissions share one execution),
//!   per-job [`rackfabric_sweep::cancel::CancelToken`]s and backpressure.
//! - [`service`] — the daemon itself: acceptor + bounded worker pool, each
//!   worker a numbered `daemon worker` trace lane, gauges and a response
//!   latency histogram in the obs registry.
//! - [`client`] — a small blocking client for tests, the load generator
//!   and scripting.
//!
//! The determinism contract: a `done` event's `result` payload for a given
//! command is byte-identical to what the batch path produces for the same
//! command against the same store — warm or cold, one worker or eight.

pub mod client;
pub mod proto;
pub mod sched;
pub mod service;

/// Common imports for daemon users and tests.
pub mod prelude {
    pub use crate::client::{done_result_bytes, Client, SubmitReply};
    pub use crate::proto::{Event, Request, StatusCounts};
    pub use crate::sched::{JobEnd, Scheduler, Submitted};
    pub use crate::service::{execute_oneshot, Daemon, DaemonConfig, DAEMON_LANE_BASE};
}

pub use client::{Client, SubmitReply};
pub use proto::{Event, Request, StatusCounts};
pub use sched::{JobEnd, Scheduler, Submitted};
pub use service::{Daemon, DaemonConfig, DAEMON_LANE_BASE};
