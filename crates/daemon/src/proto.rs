//! The wire protocol: line-delimited canonical JSON over a localhost TCP
//! connection.
//!
//! Every request and every event is one JSON object on one line, encoded
//! **canonically** (sorted keys, no whitespace) exactly like the journal's
//! records — `encode(decode(x)) == x` for every valid message, so two equal
//! responses are byte-equal lines. That property is what turns the daemon's
//! "warm queries return byte-identical answers" promise into something a
//! client can check with `==` on raw lines.
//!
//! Requests carry their operation in an `op` field; events carry theirs in
//! an `event` field. A [`Request::Submit`] embeds a full
//! [`Command`] value in its canonical structured form — the daemon speaks
//! the same instruction set as the batch CLI and the journal.

use rackfabric_cmd::command::Command;
use rackfabric_sim::json::{self, JsonValue};

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(s: &str) -> JsonValue {
    JsonValue::String(s.to_string())
}

fn uint(v: u64) -> JsonValue {
    JsonValue::Number(v.to_string())
}

fn int(v: i64) -> JsonValue {
    JsonValue::Number(v.to_string())
}

/// The facade exposes `as_u64`/`as_f64` only; priorities are signed, so
/// parse the lossless number text directly.
fn as_i64(value: &JsonValue) -> Option<i64> {
    match value {
        JsonValue::Number(text) => text.parse().ok(),
        _ => None,
    }
}

/// One client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one [`Command`] for scheduling; the connection then streams
    /// the job's events until a terminal one.
    Submit {
        /// Tenant label (grouping + trace attribution; free-form).
        tenant: String,
        /// Scheduling priority: higher runs first, ties in arrival order.
        priority: i64,
        /// The operation, in the same form the journal records.
        command: Command,
    },
    /// Cancel a job by id. Queued jobs are dropped; an active campaign is
    /// interrupted at its next job boundary (completed jobs stay journaled
    /// and persisted — a clean prefix).
    Cancel {
        /// The job id from the `accepted` event.
        job: String,
    },
    /// Ask for scheduler counters.
    Status,
    /// Drain and stop the daemon.
    Shutdown,
}

impl Request {
    /// The request as one canonical JSON line (without the newline).
    pub fn canonical_json(&self) -> String {
        let value = match self {
            Request::Submit {
                tenant,
                priority,
                command,
            } => obj(vec![
                ("command", command.to_value()),
                ("op", string("submit")),
                ("priority", int(*priority)),
                ("tenant", string(tenant)),
            ]),
            Request::Cancel { job } => obj(vec![("job", string(job)), ("op", string("cancel"))]),
            Request::Status => obj(vec![("op", string("status"))]),
            Request::Shutdown => obj(vec![("op", string("shutdown"))]),
        };
        json::canonical(&value)
    }

    /// Decodes one request line. `None` marks a malformed or unknown
    /// request (the server answers with an `error` event).
    pub fn from_line(line: &str) -> Option<Request> {
        let value = json::parse(line).ok()?;
        match value.get("op")?.as_str()? {
            "submit" => Some(Request::Submit {
                tenant: value.get("tenant")?.as_str()?.to_string(),
                priority: as_i64(value.get("priority")?)?,
                command: Command::from_value(value.get("command")?)?,
            }),
            "cancel" => Some(Request::Cancel {
                job: value.get("job")?.as_str()?.to_string(),
            }),
            "status" => Some(Request::Status),
            "shutdown" => Some(Request::Shutdown),
            _ => None,
        }
    }
}

/// Scheduler counters reported by a `status` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusCounts {
    /// Jobs waiting in the queue.
    pub queued: u64,
    /// Jobs currently on a worker.
    pub active: u64,
    /// Jobs that reached a terminal state (done, cancelled or failed).
    pub completed: u64,
    /// Completed jobs answered entirely from the store (zero executions).
    pub warm_hits: u64,
    /// Submissions refused by queue backpressure.
    pub rejected: u64,
    /// Jobs cancelled (queued drops + interrupted campaigns).
    pub cancelled: u64,
    /// Submissions that attached to an identical in-flight job instead of
    /// enqueuing a duplicate.
    pub dedup_attached: u64,
}

/// One server event line.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The submission was enqueued (or attached to an identical in-flight
    /// job) under this id.
    Accepted {
        /// Job id, unique within one daemon instance.
        job: String,
    },
    /// The submission was refused (backpressure or shutdown).
    Rejected {
        /// Why.
        reason: String,
    },
    /// A worker picked the job up.
    Started {
        /// Job id.
        job: String,
    },
    /// The job finished. `result` is the operation's canonical payload —
    /// byte-identical to what the batch CLI produces for the same command.
    Done {
        /// Job id.
        job: String,
        /// True when the store answered without any engine execution.
        cached: bool,
        /// Canonical structured result payload.
        result: JsonValue,
    },
    /// The job was cancelled (dropped from the queue, or its campaign was
    /// interrupted at a job boundary).
    Cancelled {
        /// Job id.
        job: String,
    },
    /// The request or job failed.
    Error {
        /// Job id when the failure is tied to one.
        job: Option<String>,
        /// Why.
        reason: String,
    },
    /// Scheduler counters.
    Status(StatusCounts),
    /// The daemon acknowledged a shutdown request.
    ShuttingDown,
}

impl Event {
    /// The event as one canonical JSON line (without the newline).
    pub fn canonical_json(&self) -> String {
        let value = match self {
            Event::Accepted { job } => {
                obj(vec![("event", string("accepted")), ("job", string(job))])
            }
            Event::Rejected { reason } => obj(vec![
                ("event", string("rejected")),
                ("reason", string(reason)),
            ]),
            Event::Started { job } => obj(vec![("event", string("started")), ("job", string(job))]),
            Event::Done {
                job,
                cached,
                result,
            } => obj(vec![
                ("cached", JsonValue::Bool(*cached)),
                ("event", string("done")),
                ("job", string(job)),
                ("result", result.clone()),
            ]),
            Event::Cancelled { job } => {
                obj(vec![("event", string("cancelled")), ("job", string(job))])
            }
            Event::Error { job, reason } => obj(vec![
                ("event", string("error")),
                (
                    "job",
                    match job {
                        None => JsonValue::Null,
                        Some(id) => string(id),
                    },
                ),
                ("reason", string(reason)),
            ]),
            Event::Status(counts) => obj(vec![
                ("active", uint(counts.active)),
                ("cancelled", uint(counts.cancelled)),
                ("completed", uint(counts.completed)),
                ("dedup_attached", uint(counts.dedup_attached)),
                ("event", string("status")),
                ("queued", uint(counts.queued)),
                ("rejected", uint(counts.rejected)),
                ("warm_hits", uint(counts.warm_hits)),
            ]),
            Event::ShuttingDown => obj(vec![("event", string("shutting-down"))]),
        };
        json::canonical(&value)
    }

    /// Decodes one event line. `None` marks a malformed or unknown event.
    pub fn from_line(line: &str) -> Option<Event> {
        let value = json::parse(line).ok()?;
        match value.get("event")?.as_str()? {
            "accepted" => Some(Event::Accepted {
                job: value.get("job")?.as_str()?.to_string(),
            }),
            "rejected" => Some(Event::Rejected {
                reason: value.get("reason")?.as_str()?.to_string(),
            }),
            "started" => Some(Event::Started {
                job: value.get("job")?.as_str()?.to_string(),
            }),
            "done" => Some(Event::Done {
                job: value.get("job")?.as_str()?.to_string(),
                cached: value.get("cached")?.as_bool()?,
                result: value.get("result")?.clone(),
            }),
            "cancelled" => Some(Event::Cancelled {
                job: value.get("job")?.as_str()?.to_string(),
            }),
            "error" => Some(Event::Error {
                job: match value.get("job")? {
                    JsonValue::Null => None,
                    id => Some(id.as_str()?.to_string()),
                },
                reason: value.get("reason")?.as_str()?.to_string(),
            }),
            "status" => Some(Event::Status(StatusCounts {
                queued: value.get("queued")?.as_u64()?,
                active: value.get("active")?.as_u64()?,
                completed: value.get("completed")?.as_u64()?,
                warm_hits: value.get("warm_hits")?.as_u64()?,
                rejected: value.get("rejected")?.as_u64()?,
                cancelled: value.get("cancelled")?.as_u64()?,
                dedup_attached: value.get("dedup_attached")?.as_u64()?,
            })),
            "shutting-down" => Some(Event::ShuttingDown),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_canonically() {
        let examples = vec![
            Request::Submit {
                tenant: "tenant-a".into(),
                priority: 7,
                command: Command::RunScenario {
                    spec_json: "{\"seed\":3}".into(),
                },
            },
            Request::Cancel { job: "j-42".into() },
            Request::Status,
            Request::Shutdown,
        ];
        for req in examples {
            let line = req.canonical_json();
            let back = Request::from_line(&line).unwrap();
            assert_eq!(back, req);
            assert_eq!(back.canonical_json(), line, "canonical = idempotent");
        }
    }

    #[test]
    fn events_round_trip_canonically() {
        let examples = vec![
            Event::Accepted { job: "j-1".into() },
            Event::Rejected {
                reason: "queue full".into(),
            },
            Event::Started { job: "j-1".into() },
            Event::Done {
                job: "j-1".into(),
                cached: true,
                result: json::parse("{\"failed\":\"x\"}").unwrap(),
            },
            Event::Cancelled { job: "j-1".into() },
            Event::Error {
                job: None,
                reason: "malformed request".into(),
            },
            Event::Error {
                job: Some("j-2".into()),
                reason: "boom".into(),
            },
            Event::Status(StatusCounts {
                queued: 1,
                active: 2,
                completed: 3,
                warm_hits: 4,
                rejected: 5,
                cancelled: 6,
                dedup_attached: 7,
            }),
            Event::ShuttingDown,
        ];
        for event in examples {
            let line = event.canonical_json();
            let back = Event::from_line(&line).unwrap();
            assert_eq!(back, event);
            assert_eq!(back.canonical_json(), line);
        }
    }

    #[test]
    fn malformed_lines_decode_to_none() {
        for bad in [
            "",
            "not json",
            "{\"op\":\"fly\"}",
            "{\"event\":\"warp\"}",
            "{\"op\":\"submit\",\"tenant\":\"t\"}",
        ] {
            assert!(Request::from_line(bad).is_none(), "accepted {bad:?}");
            assert!(Event::from_line(bad).is_none(), "accepted {bad:?}");
        }
    }
}
