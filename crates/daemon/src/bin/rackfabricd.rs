//! `rackfabricd` — the simulator as a long-running multi-tenant service.
//!
//! ```text
//! rackfabricd --store DIR [options]                 serve mode
//! rackfabricd --oneshot FILE --store DIR [options]  batch mode
//!
//!   --store DIR       result store directory (default: rackfabricd-store)
//!   --journal DIR     campaign journal directory (default: <store>/journal)
//!   --no-journal      run without a journal (no durability)
//!   --port N          listen port on 127.0.0.1 (default 0 = OS-assigned;
//!                     the bound address is printed as `LISTENING <addr>`)
//!   --workers N       worker pool size (default 0 = one per core)
//!   --max-queue N     queue bound before submissions are rejected
//!                     (default 1024)
//!   --threads N       engine runner threads per job (default 0 = per core)
//!   --trace FILE      on exit, write a Chrome-trace JSON of the service
//!                     (worker lanes, job spans) to FILE
//!   --metrics FILE    on exit, write the metrics registry JSON (queue
//!                     depth, warm hits, response-time histogram) to FILE
//!
//! batch mode:
//!
//!   --oneshot FILE    execute the canonical command lines in FILE through
//!                     the plain batch executor — no socket, no scheduler —
//!                     and print one canonical result line per command.
//!                     CI's determinism gate `cmp`s these bytes against the
//!                     daemon's responses for the same commands.
//!   --out FILE        write oneshot result lines to FILE instead of stdout
//! ```
//!
//! Serve mode prints `LISTENING <addr>` once the socket is bound, then runs
//! until a client sends a `shutdown` request. The protocol is one canonical
//! JSON object per line; see `rackfabric-daemon`'s crate docs.

use rackfabric_cmd::command::Command;
use rackfabric_cmd::executor::Executor;
use rackfabric_daemon::service::{execute_oneshot, Daemon, DaemonConfig};
use rackfabric_obs::metrics::Registry;
use rackfabric_obs::trace::TraceSink;
use rackfabric_obs::Observer;
use rackfabric_scenario::runner::Runner;
use rackfabric_sim::json;
use rackfabric_sweep::store::ResultStore;
use std::io::Write;
use std::net::SocketAddr;
use std::sync::Arc;

struct Args {
    store: String,
    journal: Option<String>,
    no_journal: bool,
    port: u16,
    workers: usize,
    max_queue: usize,
    threads: usize,
    trace: Option<String>,
    metrics: Option<String>,
    oneshot: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        store: "rackfabricd-store".into(),
        journal: None,
        no_journal: false,
        port: 0,
        workers: 0,
        max_queue: 1024,
        threads: 0,
        trace: None,
        metrics: None,
        oneshot: None,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} requires a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--store" => args.store = value(&mut i)?,
            "--journal" => args.journal = Some(value(&mut i)?),
            "--no-journal" => args.no_journal = true,
            "--port" => args.port = value(&mut i)?.parse().map_err(|e| format!("--port: {e}"))?,
            "--workers" => {
                args.workers = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-queue" => {
                args.max_queue = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--max-queue: {e}"))?
            }
            "--threads" => {
                args.threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--trace" => args.trace = Some(value(&mut i)?),
            "--metrics" => args.metrics = Some(value(&mut i)?),
            "--oneshot" => args.oneshot = Some(value(&mut i)?),
            "--out" => args.out = Some(value(&mut i)?),
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn build_executor(args: &Args, observer: &Observer) -> Executor {
    let store = match ResultStore::open(&args.store) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("rackfabricd: cannot open store {}: {e}", args.store);
            std::process::exit(1);
        }
    };
    let runner = Runner::new(args.threads).with_observer(observer.clone());
    if args.no_journal {
        return Executor::new(store, runner);
    }
    let dir = args
        .journal
        .clone()
        .unwrap_or_else(|| format!("{}/journal", args.store));
    match Executor::with_journal(store, runner, &dir) {
        Ok(exec) => exec,
        Err(e) => {
            eprintln!("rackfabricd: cannot open journal {dir}: {e}");
            std::process::exit(1);
        }
    }
}

/// Batch mode: the daemon's execution path with no socket or scheduler in
/// the way. One canonical command line in, one canonical result line out —
/// the reference bytes for the determinism gate.
fn run_oneshot(args: &Args, exec: &Executor, path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("rackfabricd: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut lines = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let command = json::parse(line)
            .ok()
            .as_ref()
            .and_then(Command::from_value);
        let Some(command) = command else {
            eprintln!("rackfabricd: {path}:{}: not a command line", n + 1);
            std::process::exit(1);
        };
        match execute_oneshot(exec, &command) {
            Ok((_cached, result)) => lines.push(result),
            Err(reason) => {
                eprintln!("rackfabricd: {path}:{}: {reason}", n + 1);
                std::process::exit(1);
            }
        }
    }
    let mut body = lines.join("\n");
    body.push('\n');
    match &args.out {
        None => print!("{body}"),
        Some(dest) => {
            if let Err(e) = std::fs::write(dest, body) {
                eprintln!("rackfabricd: cannot write {dest}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "rackfabricd: wrote {} result line(s) to {dest}",
                lines.len()
            );
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("rackfabricd: {message}");
            std::process::exit(2);
        }
    };

    let mut observer = Observer::off().with_registry(Arc::new(Registry::new()));
    if args.trace.is_some() {
        observer = observer.with_trace(Arc::new(TraceSink::new()));
    }
    let exec = build_executor(&args, &observer);

    if let Some(path) = &args.oneshot {
        run_oneshot(&args, &exec, path);
        return;
    }

    let config = DaemonConfig {
        workers: args.workers,
        max_queue: args.max_queue,
        addr: SocketAddr::from(([127, 0, 0, 1], args.port)),
        observer: observer.clone(),
    };
    let daemon = match Daemon::start(Arc::new(exec), config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("rackfabricd: cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", daemon.addr());
    let _ = std::io::stdout().flush();
    daemon.wait();

    if let (Some(path), Some(sink)) = (&args.trace, observer.trace()) {
        match sink.write_file(path) {
            Ok(()) => eprintln!("rackfabricd: wrote trace to {path}"),
            Err(e) => eprintln!("rackfabricd: cannot write trace {path}: {e}"),
        }
    }
    if let (Some(path), Some(registry)) = (&args.metrics, observer.registry()) {
        match std::fs::write(path, registry.render_json()) {
            Ok(()) => eprintln!("rackfabricd: wrote metrics to {path}"),
            Err(e) => eprintln!("rackfabricd: cannot write metrics {path}: {e}"),
        }
    }
    eprintln!("rackfabricd: shut down cleanly");
}
