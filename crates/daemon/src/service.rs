//! The daemon itself: a TCP acceptor, per-connection protocol threads, and
//! a bounded worker pool draining the [`Scheduler`] through one shared
//! [`Executor`].
//!
//! The design keeps every determinism property of the batch path because
//! the daemon *is* the batch path behind a socket: workers call the exact
//! executor methods the CLI calls, results come from the same shared
//! [`ResultStore`](rackfabric_sweep::store::ResultStore), and response
//! payloads are canonical JSON of the same
//! encoded outcomes. Concurrency changes who waits, never what is
//! computed.
//!
//! Worker trace lanes start at [`DAEMON_LANE_BASE`] (see the lane table in
//! `rackfabric-obs`). The service feeds the metrics registry with
//! `daemon.queue_depth` / `daemon.active_jobs` gauges, warm-hit /
//! rejection / cancellation counters, and the `daemon.response_ns`
//! histogram (enqueue-to-completion residence, wall domain).

use crate::proto::{Event, Request};
use crate::sched::{JobEnd, Observed, Scheduler, Submitted};
use rackfabric_bench::figures::{figure_defs, FigureKind, Scale};
use rackfabric_cmd::command::Command;
use rackfabric_cmd::executor::Executor;
use rackfabric_cmd::spec_codec::decode_spec;
use rackfabric_obs::{Observer, TimeDomain};
use rackfabric_sim::json::{self, JsonValue};
use rackfabric_sweep::campaign::Sweep;
use rackfabric_sweep::cancel::CancelToken;
use rackfabric_sweep::key::job_key;
use rackfabric_sweep::store::outcome_to_json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// First trace lane of the daemon's worker pool (worker `w` records on
/// `DAEMON_LANE_BASE + w`). See the lane table in the obs crate.
pub const DAEMON_LANE_BASE: u64 = 3000;

/// How long a connection watcher waits for a single job phase before
/// reporting an error instead of hanging the client forever. Generous:
/// this is a liveness backstop, not a latency target.
const WATCH_TIMEOUT: Duration = Duration::from_secs(300);

/// Service configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker pool size (`0` = one per available core).
    pub workers: usize,
    /// Queue bound: submissions past this many waiting jobs are rejected.
    pub max_queue: usize,
    /// Listen address. Port `0` asks the OS for a free port — tests use
    /// this so parallel suites never collide.
    pub addr: SocketAddr,
    /// Service instrumentation (lanes, gauges, response histogram).
    /// Observability only: responses are byte-identical with it on or off.
    pub observer: Observer,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            workers: 0,
            max_queue: 1024,
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            observer: Observer::off(),
        }
    }
}

/// A running daemon. Dropping it shuts the service down and joins every
/// worker.
pub struct Daemon {
    addr: SocketAddr,
    sched: Arc<Scheduler>,
    observer: Observer,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl Daemon {
    /// Boots the service: binds the listener, starts the worker pool and
    /// the acceptor, and returns the handle. `exec` is shared — typically
    /// journaled, always store-backed.
    pub fn start(exec: Arc<Executor>, config: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let sched = Arc::new(Scheduler::new(config.max_queue));
        let observer = config.observer.clone();
        let mut threads = Vec::with_capacity(workers + 1);
        for w in 0..workers {
            let exec = exec.clone();
            let sched = sched.clone();
            let observer = observer.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rackfabricd-worker-{w}"))
                    .spawn(move || worker_loop(w, &exec, &sched, &observer))?,
            );
        }
        {
            let sched = sched.clone();
            let observer = observer.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("rackfabricd-accept".to_string())
                    .spawn(move || accept_loop(listener, sched, observer))?,
            );
        }
        Ok(Daemon {
            addr,
            sched,
            observer,
            threads: Mutex::new(threads),
            stopped: AtomicBool::new(false),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's scheduler (tests inspect counters through it).
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// The daemon's observer (metrics snapshots, trace export).
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Blocks until a client's `shutdown` request drains the scheduler,
    /// then completes the shutdown locally (joins workers). The serve
    /// binary's main loop.
    pub fn wait(&self) {
        while !self.sched.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(100));
        }
        self.shutdown();
    }

    /// Drains and stops: queued jobs cancel, active campaigns interrupt at
    /// their next job boundary, workers and the acceptor join. Idempotent.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        self.sched.shutdown();
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection; it observes the drain flag and exits.
        let _ = TcpStream::connect(self.addr);
        let mut threads = self.threads.lock().expect("daemon threads lock");
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The acceptor: one protocol thread per connection. Connection threads
/// are detached — they die with their sockets, and shutdown completes
/// every job they could be watching.
fn accept_loop(listener: TcpListener, sched: Arc<Scheduler>, observer: Observer) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if sched.is_shutting_down() {
            return;
        }
        let sched = sched.clone();
        let observer = observer.clone();
        let _ = std::thread::Builder::new()
            .name("rackfabricd-conn".to_string())
            .spawn(move || {
                let _ = serve_connection(stream, &sched, &observer);
            });
    }
}

fn write_event(stream: &mut TcpStream, event: &Event) -> io::Result<()> {
    let mut line = event.canonical_json();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// One connection: read request lines, answer with event lines. A submit
/// streams its job's lifecycle (`accepted`, `started`, terminal) before
/// the next request is read.
fn serve_connection(stream: TcpStream, sched: &Scheduler, observer: &Observer) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Some(request) = Request::from_line(&line) else {
            write_event(
                &mut writer,
                &Event::Error {
                    job: None,
                    reason: "malformed request".to_string(),
                },
            )?;
            continue;
        };
        match request {
            Request::Submit {
                tenant,
                priority,
                command,
            } => {
                observer.count("daemon.submitted", TimeDomain::Wall, 1);
                match sched.submit(&tenant, priority, command) {
                    Submitted::Rejected(reason) => {
                        observer.count("daemon.rejected", TimeDomain::Wall, 1);
                        write_event(&mut writer, &Event::Rejected { reason })?;
                    }
                    accepted => {
                        let id = accepted.job_id().expect("accepted submissions have ids");
                        observer.gauge_set(
                            "daemon.queue_depth",
                            TimeDomain::Wall,
                            sched.queue_depth() as i64,
                        );
                        write_event(&mut writer, &Event::Accepted { job: job_name(id) })?;
                        stream_job(&mut writer, sched, id)?;
                    }
                }
            }
            Request::Cancel { job } => {
                let ok = parse_job_name(&job).is_some_and(|id| sched.cancel(id));
                if ok {
                    observer.count("daemon.cancel_requests", TimeDomain::Wall, 1);
                    write_event(&mut writer, &Event::Cancelled { job })?;
                } else {
                    write_event(
                        &mut writer,
                        &Event::Error {
                            job: Some(job),
                            reason: "unknown or finished job".to_string(),
                        },
                    )?;
                }
            }
            Request::Status => {
                write_event(&mut writer, &Event::Status(sched.counts()))?;
            }
            Request::Shutdown => {
                write_event(&mut writer, &Event::ShuttingDown)?;
                sched.shutdown();
                return Ok(());
            }
        }
    }
    Ok(())
}

/// Streams one job's phases to the client until a terminal event.
fn stream_job(writer: &mut TcpStream, sched: &Scheduler, id: u64) -> io::Result<()> {
    let mut saw_started = false;
    loop {
        match sched.watch(id, saw_started, WATCH_TIMEOUT) {
            Some(Observed::Started) => {
                saw_started = true;
                write_event(writer, &Event::Started { job: job_name(id) })?;
            }
            Some(Observed::Ended(end)) => {
                let event = match end {
                    JobEnd::Done { cached, result } => Event::Done {
                        job: job_name(id),
                        cached,
                        result,
                    },
                    JobEnd::Cancelled => Event::Cancelled { job: job_name(id) },
                    JobEnd::Failed(reason) => Event::Error {
                        job: Some(job_name(id)),
                        reason,
                    },
                };
                return write_event(writer, &event);
            }
            None => {
                return write_event(
                    writer,
                    &Event::Error {
                        job: Some(job_name(id)),
                        reason: "watch timed out".to_string(),
                    },
                );
            }
        }
    }
}

/// Public job id form (`j-17`).
fn job_name(id: u64) -> String {
    format!("j-{id}")
}

fn parse_job_name(name: &str) -> Option<u64> {
    name.strip_prefix("j-")?.parse().ok()
}

/// One worker: take jobs, execute through the shared executor, complete.
fn worker_loop(w: usize, exec: &Executor, sched: &Scheduler, observer: &Observer) {
    let lane = DAEMON_LANE_BASE + w as u64;
    if let Some(sink) = observer.trace() {
        sink.name_lane(lane, format!("daemon worker {w}"));
    }
    while let Some((id, tenant, command, cancel)) = sched.next_job() {
        observer.gauge_set(
            "daemon.queue_depth",
            TimeDomain::Wall,
            sched.queue_depth() as i64,
        );
        observer.gauge_set(
            "daemon.active_jobs",
            TimeDomain::Wall,
            sched.active_jobs() as i64,
        );
        let end = {
            let mut span = observer.span(lane, "job", "daemon");
            span.arg_u64("job", id);
            span.arg_str("tenant", tenant);
            span.arg_str("op", command.op());
            execute_command(exec, &command, &cancel)
        };
        match &end {
            JobEnd::Done { cached: true, .. } => {
                observer.count("daemon.warm_hits", TimeDomain::Wall, 1)
            }
            JobEnd::Done { .. } => observer.count("daemon.cold_runs", TimeDomain::Wall, 1),
            JobEnd::Cancelled => observer.count("daemon.cancelled", TimeDomain::Wall, 1),
            JobEnd::Failed(_) => observer.count("daemon.failed", TimeDomain::Wall, 1),
        }
        let residence = sched.complete(id, end);
        observer.record(
            "daemon.response_ns",
            TimeDomain::Wall,
            residence.as_nanos().min(u64::MAX as u128) as u64,
        );
        observer.gauge_set(
            "daemon.active_jobs",
            TimeDomain::Wall,
            sched.active_jobs() as i64,
        );
    }
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Executes one command exactly as a daemon worker would, returning
/// `(cached, canonical_result_line)`. The CLI's `--oneshot` batch mode and
/// CI's byte-comparison gate use this to produce reference bytes with no
/// socket or scheduler in the path.
pub fn execute_oneshot(exec: &Executor, command: &Command) -> Result<(bool, String), String> {
    match execute_command(exec, command, &CancelToken::new()) {
        JobEnd::Done { cached, result } => Ok((cached, json::canonical(&result))),
        JobEnd::Cancelled => Err("cancelled".to_string()),
        JobEnd::Failed(reason) => Err(reason),
    }
}

/// Executes one command through the shared executor, producing the job's
/// terminal state. Scenario results are the canonical outcome encoding the
/// store itself uses, so a response is byte-comparable to a batch run.
fn execute_command(exec: &Executor, command: &Command, cancel: &CancelToken) -> JobEnd {
    if cancel.is_cancelled() {
        return JobEnd::Cancelled;
    }
    match command {
        Command::RunScenario { spec_json } => run_spec(exec, spec_json, None),
        Command::ExecuteCell { key, spec_json } => run_spec(exec, spec_json, Some(*key)),
        Command::RegenerateFigure { id, scale, budget } => {
            let scale = match scale.as_str() {
                "tiny" => Scale::Tiny,
                "paper" => Scale::Paper,
                other => return JobEnd::Failed(format!("unknown figure scale {other:?}")),
            };
            let Some(def) = figure_defs(scale).into_iter().find(|def| def.id == *id) else {
                return JobEnd::Failed(format!("unknown figure {id:?}"));
            };
            let (matrix, export) = match def.kind {
                FigureKind::Analytic(render) => {
                    let result = obj(vec![
                        ("executed", JsonValue::Number("0".into())),
                        ("export", JsonValue::String(render())),
                        ("figure", JsonValue::String(def.id.to_string())),
                        ("interrupted", JsonValue::Bool(false)),
                    ]);
                    return JobEnd::Done {
                        cached: true,
                        result,
                    };
                }
                FigureKind::Sim(matrix, export) => (matrix, export),
            };
            let mut sweep = Sweep::new(*matrix).cancel(cancel.clone());
            if let Some(spec) = budget {
                sweep = sweep.budget(spec.to_policy());
            }
            match exec.regenerate_figure(id, scale.golden_dir(), &sweep) {
                Err(e) => JobEnd::Failed(e.to_string()),
                Ok(outcome) if outcome.interrupted => JobEnd::Cancelled,
                Ok(outcome) => {
                    let result = obj(vec![
                        ("executed", JsonValue::Number(outcome.executed.to_string())),
                        ("export", JsonValue::String(export(&outcome))),
                        ("figure", JsonValue::String(def.id.to_string())),
                        ("interrupted", JsonValue::Bool(false)),
                    ]);
                    JobEnd::Done {
                        cached: outcome.executed == 0,
                        result,
                    }
                }
            }
        }
        Command::GcStore { live } => match exec.gc(live) {
            Err(e) => JobEnd::Failed(e.to_string()),
            Ok(stats) => JobEnd::Done {
                cached: false,
                result: obj(vec![
                    ("kept", JsonValue::Number(stats.kept.to_string())),
                    ("removed", JsonValue::Number(stats.removed.to_string())),
                ]),
            },
        },
        other => JobEnd::Failed(format!(
            "op {:?} is not servable over the daemon API",
            other.op()
        )),
    }
}

/// Runs one scenario spec store-first. With `expect`, the journaled key is
/// verified against the decoded spec before any engine time is spent.
fn run_spec(
    exec: &Executor,
    spec_json: &str,
    expect: Option<rackfabric_sweep::key::JobKey>,
) -> JobEnd {
    let spec = match decode_spec(spec_json) {
        Ok(spec) => spec,
        Err(e) => return JobEnd::Failed(format!("bad spec: {e}")),
    };
    if let Some(expected) = expect {
        let derived = job_key(&spec);
        if derived != expected {
            return JobEnd::Failed(format!(
                "key {expected} does not match its spec (derived {derived})"
            ));
        }
    }
    match exec.run_scenario_tracked(&spec) {
        Err(e) => JobEnd::Failed(e.to_string()),
        Ok((outcome, cached)) => {
            let text = outcome_to_json(&outcome);
            let result = json::parse(&text).expect("outcome_to_json emits valid JSON");
            JobEnd::Done { cached, result }
        }
    }
}
