//! Parallel execution of an expanded scenario matrix.
//!
//! Jobs are independent single-threaded `Simulator` runs, so the runner is
//! an embarrassingly parallel pool: worker threads steal the next unclaimed
//! job from a shared atomic cursor and stream `(index, outcome)` pairs back
//! over an mpsc channel. Results are re-ordered by job index before
//! aggregation, so the output is **bit-identical regardless of thread count
//! or scheduling** — the determinism the repository's experiments rely on.

use crate::aggregate::{aggregate_cells, CellSummary};
use crate::matrix::{Job, Matrix};
use crate::spec::{FecSetting, ScenarioSpec};
use rackfabric::fabric::AdaptiveFabric;
use rackfabric::metrics::RunSummary;
use rackfabric_obs::{Observer, TimeDomain};
use rackfabric_phy::{PlpCommand, PlpExecutor};
use rackfabric_sim::engine::SchedulerKind;
use rackfabric_sim::queue::Scheduler;
use rackfabric_sim::stats::Histogram;
use rackfabric_sim::{CalendarQueue, EventQueue, Simulator};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// What one job produced.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The simulation ran to its horizon (or completion). Boxed: a result
    /// carries two full histograms and dwarfs the failure variant.
    Completed(Box<JobResult>),
    /// The simulation panicked; the message is recorded and the sweep
    /// continues.
    Failed(String),
}

/// The measured output of one completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Condensed run metrics.
    pub summary: RunSummary,
    /// Full end-to-end latency histogram (merged across replicates by the
    /// aggregator for tail percentiles).
    pub packet_latency: Histogram,
    /// Full queueing-delay histogram.
    pub queueing_latency: Histogram,
    /// Whether every flow delivered all of its bytes within the horizon.
    pub all_flows_complete: bool,
    /// Engine events processed (deterministic: identical across schedulers
    /// and thread counts).
    pub events_processed: u64,
    /// Wall-clock nanoseconds the engine spent on this job. **Not**
    /// deterministic — used for perf reporting only, never exported in the
    /// byte-stable CSV/JSON.
    pub wall_nanos: u64,
}

impl JobResult {
    /// Engine events per wall-clock second for this job.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.events_processed as f64 * 1e9 / self.wall_nanos as f64
        }
    }
}

/// One job together with its outcome, in matrix order.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job as expanded from the matrix.
    pub job: Job,
    /// What running it produced.
    pub outcome: JobOutcome,
}

/// Everything a [`Runner::run`] call produces.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Per-job records, ordered by job index.
    pub jobs: Vec<JobRecord>,
    /// Per-cell aggregates, ordered by cell index.
    pub cells: Vec<CellSummary>,
}

impl MatrixResult {
    /// Number of jobs that failed (panicked).
    pub fn failed_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Failed(_)))
            .count()
    }
}

/// Executes a single fully resolved scenario (what each worker thread runs):
/// the monolithic engine on the spec's configured scheduler, or the sharded
/// multi-rack engine when `spec.shards >= 1`.
pub fn run_scenario(spec: &ScenarioSpec) -> JobResult {
    if spec.shards >= 1 {
        return run_scenario_sharded(spec);
    }
    match spec.scheduler {
        SchedulerKind::Calendar => run_scenario_on(spec, CalendarQueue::new()),
        SchedulerKind::Heap => run_scenario_on(spec, EventQueue::new()),
    }
}

/// Executes a scenario on the sharded engine. Results are byte-identical
/// for every shard count (the 1-shard run is the reference the CI gate
/// diffs N-shard runs against).
fn run_scenario_sharded(spec: &ScenarioSpec) -> JobResult {
    let flows = spec.build_flows();
    let mut config = rackfabric::shard::ShardedConfig::new(spec.to_fabric_config(), spec.shards);
    // Parallelism already comes from the job-level Runner pool; letting every
    // job also spawn one spinning window-worker per shard would nest two
    // thread pools and oversubscribe the machine. Worker count never affects
    // results, so the scenario path always drains windows on the job thread.
    config.workers = 1;
    let mut fabric = rackfabric::shard::ShardedFabric::new(config, flows);
    apply_phy_policy_to(spec, fabric.phy_mut());
    let start = std::time::Instant::now();
    let run = fabric.run();
    let wall_nanos = start.elapsed().as_nanos() as u64;
    JobResult {
        summary: run.metrics.summary(),
        packet_latency: run.metrics.packet_latency.clone(),
        queueing_latency: run.metrics.queueing_latency.clone(),
        all_flows_complete: run.all_flows_complete,
        events_processed: run.events_processed,
        wall_nanos,
    }
}

/// Executes a scenario on an explicit scheduler implementation.
fn run_scenario_on<S: Scheduler<rackfabric::fabric::FabricEvent>>(
    spec: &ScenarioSpec,
    scheduler: S,
) -> JobResult {
    let flows = spec.build_flows();
    let config = spec.to_fabric_config();
    let mut fabric = AdaptiveFabric::new(config, flows);
    apply_phy_policy(spec, &mut fabric);
    let mut sim = Simulator::with_scheduler(fabric, spec.seed, scheduler)
        .with_event_budget(spec.event_budget);
    let start = std::time::Instant::now();
    sim.run_until(spec.horizon);
    let wall_nanos = start.elapsed().as_nanos() as u64;
    let events_processed = sim.events_processed();
    let fabric = sim.into_model();
    JobResult {
        summary: fabric.metrics.summary(),
        packet_latency: fabric.metrics.packet_latency.clone(),
        queueing_latency: fabric.metrics.queueing_latency.clone(),
        all_flows_complete: fabric.all_flows_complete(),
        events_processed,
        wall_nanos,
    }
}

/// Applies the spec's initial PLP state (FEC, lane caps, power) to the
/// freshly instantiated fabric, before the first event fires.
fn apply_phy_policy(spec: &ScenarioSpec, fabric: &mut AdaptiveFabric) {
    apply_phy_policy_to(spec, &mut fabric.phy);
}

/// Applies the spec's initial PLP state to a bare physical state (shared by
/// the monolithic and sharded engine paths).
fn apply_phy_policy_to(spec: &ScenarioSpec, phy: &mut rackfabric_phy::PhyState) {
    let executor = PlpExecutor::default();
    let link_ids = phy.link_ids();
    for link in link_ids {
        if let FecSetting::Fixed(mode) = spec.phy.fec {
            let _ = executor.execute(phy, &PlpCommand::SetFec { link, mode });
        }
        if let Some(cap) = spec.phy.active_lanes {
            let total = phy.link(link).map(|l| l.total_lanes()).unwrap_or(0);
            let lanes = cap.min(total).max(1);
            let _ = executor.execute(phy, &PlpCommand::SetActiveLanes { link, lanes });
        }
        if spec.phy.power != rackfabric_phy::PowerState::Active {
            let _ = executor.execute(
                phy,
                &PlpCommand::SetPower {
                    link,
                    state: spec.phy.power,
                },
            );
        }
    }
    // Bypass chains: short-circuit the switching logic at the first N
    // intermediate nodes of the node-id chain (the unique path on a line
    // topology). Nodes missing either chain link are skipped silently —
    // the knob is a no-op on topologies without the chain.
    for node in 1..=spec.phy.bypassed_nodes as u32 {
        let in_link = phy.find_link_between(node - 1, node).map(|l| l.id);
        let out_link = phy.find_link_between(node, node + 1).map(|l| l.id);
        if let (Some(in_link), Some(out_link)) = (in_link, out_link) {
            let _ = executor.execute(
                phy,
                &PlpCommand::EnableBypass {
                    at_node: node,
                    in_link,
                    out_link,
                },
            );
        }
    }
}

/// The trace lane of job worker `w` ([`Runner`] spans). Offset so job-level
/// lanes never collide with the windowed engine's per-worker lanes.
const JOB_LANE_BASE: u64 = 1000;

/// A work-stealing pool of OS threads executing matrix jobs.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    /// Job-lifecycle tracing (one span per job on its worker's lane).
    /// Observability only: never threaded into the simulations themselves,
    /// so job results stay byte-identical with tracing on or off.
    observer: Observer,
}

impl Runner {
    /// A runner with an explicit worker count (`0` = one worker per
    /// available core).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Runner {
            threads,
            observer: Observer::off(),
        }
    }

    /// A runner that executes jobs on the calling thread only.
    pub fn single_threaded() -> Self {
        Runner {
            threads: 1,
            observer: Observer::off(),
        }
    }

    /// Attaches an observer: each executed job records a span on its worker
    /// thread's lane, plus job/failure counters.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// The worker count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Expands `matrix` and executes every job, returning per-job records
    /// and per-cell aggregates. The result is a pure function of the matrix:
    /// thread count and scheduling order do not affect it.
    pub fn run(&self, matrix: &Matrix) -> MatrixResult {
        let jobs = matrix.expand();
        let outcomes = self.execute(&jobs);
        let records: Vec<JobRecord> = jobs
            .into_iter()
            .zip(outcomes)
            .map(|(job, outcome)| JobRecord { job, outcome })
            .collect();
        let cells = aggregate_cells(&records);
        MatrixResult {
            jobs: records,
            cells,
        }
    }

    /// Executes an explicit job list (not necessarily a full matrix
    /// expansion), returning outcomes in list order. This is the incremental
    /// dispatch hook `rackfabric-sweep` uses to run only the jobs missing
    /// from its result store; results are a pure function of each job's
    /// spec, independent of thread count and of which other jobs ride along.
    pub fn run_jobs(&self, jobs: &[Job]) -> Vec<JobOutcome> {
        self.execute(jobs)
    }

    /// Runs the job list, returning outcomes in job order.
    fn execute(&self, jobs: &[Job]) -> Vec<JobOutcome> {
        let workers = self.threads.min(jobs.len()).max(1);
        let cursor = AtomicUsize::new(0);
        let (sender, receiver) = mpsc::channel::<(usize, JobOutcome)>();
        if let Some(sink) = self.observer.trace() {
            for w in 0..workers {
                sink.name_lane(JOB_LANE_BASE + w as u64, format!("job worker {w}"));
            }
        }

        std::thread::scope(|scope| {
            for w in 0..workers {
                let sender = sender.clone();
                let cursor = &cursor;
                let observer = &self.observer;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let mut span = observer.span(JOB_LANE_BASE + w as u64, "job", "runner");
                    span.arg_u64("index", index as u64);
                    let outcome = match catch_unwind(AssertUnwindSafe(|| run_scenario(&job.spec))) {
                        Ok(result) => {
                            span.arg_u64("events", result.events_processed);
                            observer.count("runner.jobs_completed", TimeDomain::Sim, 1);
                            JobOutcome::Completed(Box::new(result))
                        }
                        Err(panic) => {
                            span.arg_str("failed", "panic");
                            observer.count("runner.jobs_failed", TimeDomain::Sim, 1);
                            JobOutcome::Failed(panic_message(panic))
                        }
                    };
                    drop(span);
                    if sender.send((index, outcome)).is_err() {
                        break;
                    }
                });
            }
            drop(sender);

            let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
            for (index, outcome) in receiver {
                outcomes[index] = Some(outcome);
            }
            outcomes
                .into_iter()
                .map(|o| o.expect("every job reports exactly once"))
                .collect()
        })
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new(0)
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::AxisValue;
    use crate::spec::WorkloadSpec;
    use rackfabric_sim::time::SimTime;
    use rackfabric_sim::units::Bytes;
    use rackfabric_topo::spec::TopologySpec;

    fn small_matrix() -> Matrix {
        let base = ScenarioSpec::new(
            "runner-unit",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .horizon(SimTime::from_millis(20));
        Matrix::new(base)
            .axis(
                "racks",
                vec![
                    AxisValue::Topology(TopologySpec::grid(2, 2, 2)),
                    AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
                ],
            )
            .replicates(2)
    }

    #[test]
    fn runs_every_job_and_aggregates_cells() {
        let result = Runner::new(2).run(&small_matrix());
        assert_eq!(result.jobs.len(), 4);
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.failed_jobs(), 0);
        for record in &result.jobs {
            let JobOutcome::Completed(r) = &record.outcome else {
                panic!("job failed");
            };
            assert!(r.all_flows_complete);
            assert!(r.summary.delivered_bytes > 0);
        }
    }

    #[test]
    fn single_scenario_matches_direct_run() {
        let spec = ScenarioSpec::new(
            "direct",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .horizon(SimTime::from_millis(20))
        .seed(5);
        let a = run_scenario(&spec);
        let b = run_scenario(&spec);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.summary.delivered_bytes, b.summary.delivered_bytes);
    }

    #[test]
    fn a_panicking_job_does_not_sink_the_sweep() {
        // The (1-node line × storage) cell panics while generating flows:
        // the storage split leaves no compute sleds. Every other cell must
        // still run and aggregate.
        let base = ScenarioSpec::new(
            "panic-isolation",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(1)),
        )
        .horizon(SimTime::from_millis(20));
        let storage = WorkloadSpec::Storage {
            ops_per_node: 1.0,
            io_size: Bytes::new(100),
            read_fraction: 0.5,
            load: 1.0,
        };
        let matrix = Matrix::new(base)
            .axis(
                "topo",
                vec![
                    AxisValue::Topology(TopologySpec::grid(2, 2, 2)),
                    AxisValue::Topology(TopologySpec::line(1, 1)),
                ],
            )
            .axis(
                "workload",
                vec![
                    AxisValue::Workload(WorkloadSpec::shuffle(Bytes::from_kib(1))),
                    AxisValue::Workload(storage),
                ],
            );
        let result = Runner::new(2).run(&matrix);
        assert_eq!(result.jobs.len(), 4);
        assert_eq!(result.failed_jobs(), 1);
        let failed = result
            .jobs
            .iter()
            .find(|r| matches!(r.outcome, JobOutcome::Failed(_)))
            .unwrap();
        assert_eq!(failed.job.labels[0].1, "line-1-1lane");
        assert_eq!(failed.job.labels[1].1, "storage");
    }
}
