//! # rackfabric-scenario
//!
//! A declarative, parallel **scenario-matrix engine** for the rack-scale
//! fabric: the layer that turns one-off hand-wired `Simulator` runs into
//! reproducible parameter sweeps with tail-latency statistics.
//!
//! The paper's claim — that an adaptive fabric beats static configurations —
//! only holds across a *space* of operating points (rack size, workload mix,
//! FEC mode, power policy, seeds). This crate expresses that space directly:
//!
//! * [`ScenarioSpec`] — one cell as plain data: topology,
//!   workload, PHY policy (FEC / lanes / power), controller policy, seed and
//!   horizon.
//! * [`Matrix`] — a base spec plus sweep [`Axis`]
//!   definitions (`racks × load × fec × N seeds`), expanded into a job list
//!   by pure cartesian product with seeds derived from one
//!   [`DetRng`](rackfabric_sim::rng::DetRng) stream.
//! * [`Runner`] — a work-stealing pool of OS threads running
//!   hundreds of independent single-threaded simulations; results are keyed
//!   by job index, so output is **bit-identical for 1 and N threads**.
//! * [`aggregate`] / [`export`] — per-cell p50/p99/p999 latency (histograms
//!   merged across replicates via [`rackfabric_sim::stats`]), throughput,
//!   power and reconfiguration counts, rendered as CSV or JSON.
//!
//! ## Example
//!
//! ```
//! use rackfabric_scenario::prelude::*;
//! use rackfabric_sim::prelude::*;
//! use rackfabric::prelude::TopologySpec;
//!
//! let base = ScenarioSpec::new(
//!     "quickstart",
//!     TopologySpec::grid(3, 3, 2),
//!     WorkloadSpec::shuffle(Bytes::from_kib(2)),
//! )
//! .horizon(SimTime::from_millis(20));
//!
//! let matrix = Matrix::new(base)
//!     .axis("racks", vec![
//!         AxisValue::Topology(TopologySpec::grid(2, 2, 2)),
//!         AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
//!     ])
//!     .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
//!     .replicates(2);
//!
//! let result = Runner::new(4).run(&matrix);
//! assert_eq!(result.cells.len(), 4);
//! assert_eq!(result.jobs.len(), 8);
//! println!("{}", result.to_csv());
//! ```

pub mod aggregate;
pub mod export;
pub mod matrix;
pub mod runner;
pub mod spec;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::aggregate::CellSummary;
    pub use crate::matrix::{Axis, AxisValue, Job, Matrix};
    pub use crate::runner::{JobOutcome, JobRecord, JobResult, MatrixResult, Runner};
    pub use crate::spec::{ControllerSpec, FecSetting, PhyPolicy, ScenarioSpec, WorkloadSpec};
}

pub use aggregate::CellSummary;
pub use matrix::{Axis, AxisValue, Job, Matrix};
pub use runner::{JobOutcome, JobRecord, JobResult, MatrixResult, Runner};
pub use spec::{ControllerSpec, FecSetting, PhyPolicy, ScenarioSpec, WorkloadSpec};
