//! Axis sweeps: expanding a base [`ScenarioSpec`] × axes × seeds into a job
//! list.
//!
//! A [`Matrix`] is the cartesian product of its axes. Each combination of
//! axis values is a **cell**; each cell runs `replicates` times with
//! distinct, deterministically derived seeds — so `racks × load × fec × 10
//! seeds` expands to one [`Job`] per (cell, replicate) pair. Expansion is
//! pure: the same matrix always yields the same jobs in the same order, with
//! the same seeds, which is what makes N-thread execution reproducible.

use crate::spec::{ControllerSpec, FecSetting, ScenarioSpec, WorkloadSpec};
use rackfabric::policy::CrcPolicy;
use rackfabric_phy::PlpTiming;
use rackfabric_sim::rng::DetRng;
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Bytes, Length};
use rackfabric_switch::model::{SwitchKind, SwitchModel};
use rackfabric_topo::routing::RoutingAlgorithm;
use rackfabric_topo::spec::TopologySpec;

/// One value of a sweep axis: a mutation applied to the base spec.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// Replace the starting topology.
    Topology(TopologySpec),
    /// Replace the escalation topology.
    Upgrade(Option<TopologySpec>),
    /// Replace the workload wholesale.
    Workload(WorkloadSpec),
    /// Set the workload's intensity multiplier.
    Load(f64),
    /// Set the initial FEC codec.
    Fec(FecSetting),
    /// Cap the initially active lanes per link.
    ActiveLanes(Option<usize>),
    /// Replace the controller.
    Controller(ControllerSpec),
    /// Set the CRC policy (keeps the controller's epoch and routing; turns a
    /// baseline controller adaptive).
    Policy(CrcPolicy),
    /// Override the routing algorithm regardless of controller (sets
    /// [`ScenarioSpec::routing`], so a static baseline fabric can run
    /// Valiant or adaptive routing and an adaptive controller's default is
    /// replaced).
    Routing(RoutingAlgorithm),
    /// Set the per-lane signalling rate.
    LaneRate(BitRate),
    /// Set the packetisation size.
    Mtu(Bytes),
    /// Set the packet-train rate window (how many bytes each link drain
    /// event batches; the train-batching knob of the hot path).
    TrainWindow(SimDuration),
    /// Set the switch datapath model (forwarding discipline + pipeline
    /// latency) used at every node.
    SwitchModel(SwitchModel),
    /// Set the per-port egress buffer (tail-drop depth; ECN marks above
    /// half of it).
    PortBuffer(Bytes),
    /// Set the PLP reconfiguration-latency table (what every reconfiguration
    /// command costs before traffic may resume).
    PlpTiming(PlpTiming),
    /// Install PHY bypasses at the first `n` intermediate nodes of the
    /// node-id chain before the run (line topologies).
    BypassChain(usize),
    /// Apply several mutations as one axis value (for knobs that must move
    /// together, e.g. a topology and its matching escalation target).
    Multi(Vec<AxisValue>),
    /// Set the simulation horizon.
    Horizon(SimTime),
    /// Select the engine: `0` = monolithic, `n >= 1` = sharded multi-rack
    /// engine with `n` rack groups. Sweeps use this axis to cross-check
    /// 1-shard against N-shard runs (byte-identical exports).
    Shards(usize),
    /// Stretch every **inter-rack** cable of the topology (and its
    /// escalation target) to at least this length. Longer inter-rack cables
    /// fund a larger conservative lookahead for the sharded engine — the
    /// physical knob behind its window length.
    RackSpacing(Length),
}

impl AxisValue {
    /// Applies the mutation to `spec`.
    pub fn apply(&self, spec: &mut ScenarioSpec) {
        match self {
            AxisValue::Topology(t) => spec.topology = t.clone(),
            AxisValue::Upgrade(u) => spec.upgrade = u.clone(),
            AxisValue::Workload(w) => spec.workload = w.clone(),
            AxisValue::Load(l) => spec.workload = spec.workload.clone().with_load(*l),
            AxisValue::Fec(f) => spec.phy.fec = *f,
            AxisValue::ActiveLanes(n) => spec.phy.active_lanes = *n,
            AxisValue::Controller(c) => spec.controller = *c,
            AxisValue::Policy(p) => match &mut spec.controller {
                ControllerSpec::Adaptive { policy, .. } => *policy = *p,
                baseline @ ControllerSpec::Baseline => {
                    let mut adaptive = ControllerSpec::adaptive_default();
                    if let ControllerSpec::Adaptive { policy, .. } = &mut adaptive {
                        *policy = *p;
                    }
                    *baseline = adaptive;
                }
            },
            AxisValue::Routing(r) => spec.routing = Some(*r),
            AxisValue::LaneRate(rate) => spec.lane_rate = *rate,
            AxisValue::Mtu(m) => spec.mtu = *m,
            AxisValue::TrainWindow(w) => spec.train_window = *w,
            AxisValue::SwitchModel(m) => spec.switch = *m,
            AxisValue::PortBuffer(b) => spec.port_buffer = *b,
            AxisValue::PlpTiming(t) => spec.plp_timing = *t,
            AxisValue::BypassChain(n) => spec.phy.bypassed_nodes = *n,
            AxisValue::Multi(values) => {
                for value in values {
                    value.apply(spec);
                }
            }
            AxisValue::Horizon(h) => spec.horizon = *h,
            AxisValue::Shards(n) => spec.shards = *n,
            AxisValue::RackSpacing(l) => {
                spec.topology = spec.topology.clone().with_rack_spacing(*l);
                spec.upgrade = spec.upgrade.take().map(|t| t.with_rack_spacing(*l));
            }
        }
    }

    /// Compact value label used in cell labels and export columns.
    pub fn label(&self) -> String {
        match self {
            AxisValue::Topology(t) => t.name.clone(),
            AxisValue::Upgrade(Some(t)) => format!("->{}", t.name),
            AxisValue::Upgrade(None) => "static".into(),
            AxisValue::Workload(w) => w.label(),
            AxisValue::Load(l) => format!("{l}"),
            AxisValue::Fec(f) => f.label(),
            AxisValue::ActiveLanes(Some(n)) => format!("{n}"),
            AxisValue::ActiveLanes(None) => "all".into(),
            AxisValue::Controller(c) => c.label(),
            AxisValue::Policy(p) => p.name().into(),
            AxisValue::Routing(r) => match r {
                RoutingAlgorithm::ShortestHop => "minimal".into(),
                RoutingAlgorithm::MinCost => "mincost".into(),
                RoutingAlgorithm::Ecmp => "ecmp".into(),
                RoutingAlgorithm::DimensionOrdered => "dor".into(),
                RoutingAlgorithm::Valiant => "valiant".into(),
                RoutingAlgorithm::Adaptive => "adaptive".into(),
            },
            AxisValue::LaneRate(rate) => format!("{}gbps", rate.as_gbps_f64()),
            AxisValue::Mtu(m) => format!("{}B", m.as_u64()),
            AxisValue::TrainWindow(w) => format!("{}ns", w.as_nanos_f64()),
            AxisValue::SwitchModel(m) => {
                let kind = match m.kind {
                    SwitchKind::CutThrough => "cut-through",
                    SwitchKind::StoreAndForward => "store-fwd",
                };
                format!("{kind}-{}ns", m.pipeline_latency.as_nanos_f64())
            }
            AxisValue::PortBuffer(b) => {
                let bytes = b.as_u64();
                if bytes % 1024 == 0 {
                    format!("{}KiB", bytes / 1024)
                } else {
                    format!("{bytes}B")
                }
            }
            // The split latency is the headline reconfiguration cost the
            // paper sweeps; it stands in for the whole table.
            AxisValue::PlpTiming(t) => format!("split-{}us", t.split.as_micros_f64()),
            AxisValue::BypassChain(n) => format!("{n}"),
            AxisValue::Multi(values) => values
                .iter()
                .map(|v| v.label())
                .collect::<Vec<_>>()
                .join("+"),
            AxisValue::Horizon(h) => format!("{}us", h.as_micros_f64()),
            AxisValue::Shards(0) => "monolithic".into(),
            AxisValue::Shards(n) => format!("{n}"),
            AxisValue::RackSpacing(l) => {
                let mm = l.as_mm();
                if mm % 1000 == 0 {
                    format!("{}m", mm / 1000)
                } else {
                    format!("{mm}mm")
                }
            }
        }
    }
}

/// A named sweep dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Column name in exports (e.g. `"racks"`, `"load"`, `"fec"`).
    pub name: String,
    /// The values swept along this axis.
    pub values: Vec<AxisValue>,
}

/// One executable unit: a fully resolved spec plus its position in the
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Position in the expanded job list (also the result ordering key).
    pub index: usize,
    /// Which cell (axis-value combination) this job belongs to.
    pub cell: usize,
    /// Which replicate within the cell.
    pub replicate: usize,
    /// `(axis name, value label)` pairs identifying the cell.
    pub labels: Vec<(String, String)>,
    /// The resolved scenario (with the per-job seed already installed).
    pub spec: ScenarioSpec,
}

/// A declarative sweep: base spec × axes × replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// The spec every cell starts from.
    pub base: ScenarioSpec,
    /// Sweep dimensions, applied in order.
    pub axes: Vec<Axis>,
    /// Seeds per cell.
    pub replicates: usize,
    /// Master seed all per-job seeds derive from.
    pub master_seed: u64,
}

impl Matrix {
    /// A matrix with no axes (a single cell) and one replicate.
    pub fn new(base: ScenarioSpec) -> Self {
        let master_seed = base.seed;
        Matrix {
            base,
            axes: Vec::new(),
            replicates: 1,
            master_seed,
        }
    }

    /// Adds a sweep axis, returning the modified matrix.
    pub fn axis(mut self, name: impl Into<String>, values: Vec<AxisValue>) -> Self {
        assert!(!values.is_empty(), "an axis needs at least one value");
        self.axes.push(Axis {
            name: name.into(),
            values,
        });
        self
    }

    /// Sets the number of seeds per cell, returning the modified matrix.
    pub fn replicates(mut self, n: usize) -> Self {
        assert!(n >= 1, "a cell needs at least one replicate");
        self.replicates = n;
        self
    }

    /// Sets the master seed, returning the modified matrix.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Number of cells (product of axis sizes).
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Number of jobs (cells × replicates).
    pub fn job_count(&self) -> usize {
        self.cell_count() * self.replicates
    }

    /// Expands the matrix into its job list.
    ///
    /// Cells enumerate in mixed-radix order (last axis fastest); replicates
    /// nest innermost. Per-job seeds are drawn from a single
    /// [`DetRng`] stream over the master seed, so the mapping
    /// `(cell, replicate) -> seed` is a pure function of the matrix.
    pub fn expand(&self) -> Vec<Job> {
        let cells = self.cell_count();
        let mut seed_rng = DetRng::new(self.master_seed);
        let mut jobs = Vec::with_capacity(self.job_count());
        for cell in 0..cells {
            let mut spec = self.base.clone();
            let mut labels = Vec::with_capacity(self.axes.len());
            // Decode the cell index into one value per axis (last axis is
            // the fastest-varying digit).
            let mut remainder = cell;
            let mut choices = vec![0usize; self.axes.len()];
            for (i, axis) in self.axes.iter().enumerate().rev() {
                choices[i] = remainder % axis.values.len();
                remainder /= axis.values.len();
            }
            for (axis, &choice) in self.axes.iter().zip(&choices) {
                let value = &axis.values[choice];
                value.apply(&mut spec);
                labels.push((axis.name.clone(), value.label()));
            }
            for replicate in 0..self.replicates {
                let mut job_spec = spec.clone();
                job_spec.seed = seed_rng.next_u64();
                jobs.push(Job {
                    index: jobs.len(),
                    cell,
                    replicate,
                    labels: labels.clone(),
                    spec: job_spec,
                });
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sim::units::Bytes;

    fn base() -> ScenarioSpec {
        ScenarioSpec::new(
            "unit",
            TopologySpec::grid(3, 3, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(4)),
        )
    }

    fn rack_axis() -> Vec<AxisValue> {
        vec![
            AxisValue::Topology(TopologySpec::grid(2, 2, 2)),
            AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
            AxisValue::Topology(TopologySpec::grid(4, 4, 2)),
        ]
    }

    #[test]
    fn routing_axis_overrides_any_controller() {
        let mut spec = base().controller(ControllerSpec::Baseline);
        AxisValue::Routing(RoutingAlgorithm::Valiant).apply(&mut spec);
        assert_eq!(spec.routing, Some(RoutingAlgorithm::Valiant));
        assert_eq!(
            spec.to_fabric_config().routing,
            RoutingAlgorithm::Valiant,
            "the axis must reach the lowered config even without a controller"
        );
        assert_eq!(
            AxisValue::Routing(RoutingAlgorithm::ShortestHop).label(),
            "minimal"
        );
        assert_eq!(
            AxisValue::Routing(RoutingAlgorithm::Adaptive).label(),
            "adaptive"
        );
    }

    #[test]
    fn expansion_is_the_cartesian_product() {
        let m = Matrix::new(base())
            .axis("racks", rack_axis())
            .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
            .replicates(4);
        assert_eq!(m.cell_count(), 6);
        assert_eq!(m.job_count(), 24);
        let jobs = m.expand();
        assert_eq!(jobs.len(), 24);
        // Indices are dense and ordered.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
        // Every cell appears with every replicate.
        assert_eq!(jobs.iter().filter(|j| j.cell == 5).count(), 4);
        // Last axis varies fastest.
        assert_eq!(jobs[0].labels[1].1, "0.5");
        assert_eq!(jobs[4].labels[1].1, "1");
        assert_eq!(jobs[0].labels[0].1, jobs[4].labels[0].1);
    }

    #[test]
    fn expansion_is_deterministic() {
        let m = Matrix::new(base())
            .axis("racks", rack_axis())
            .replicates(3)
            .master_seed(99);
        assert_eq!(m.expand(), m.expand());
    }

    #[test]
    fn replicates_get_distinct_seeds() {
        let m = Matrix::new(base()).axis("racks", rack_axis()).replicates(5);
        let jobs = m.expand();
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.spec.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), jobs.len(), "every job must get its own seed");
    }

    #[test]
    fn master_seed_changes_all_job_seeds() {
        let a = Matrix::new(base()).master_seed(1).expand();
        let b = Matrix::new(base()).master_seed(2).expand();
        assert_ne!(a[0].spec.seed, b[0].spec.seed);
    }

    #[test]
    fn load_axis_rescales_the_base_workload() {
        let m = Matrix::new(base()).axis("load", vec![AxisValue::Load(2.0)]);
        let jobs = m.expand();
        assert_eq!(jobs[0].spec.workload.load(), 2.0);
        assert_eq!(jobs[0].spec.workload.label(), "shuffle");
    }

    #[test]
    fn policy_axis_turns_a_baseline_adaptive() {
        let mut spec = base().controller(ControllerSpec::Baseline);
        AxisValue::Policy(CrcPolicy::CongestionBalance).apply(&mut spec);
        assert!(matches!(
            spec.controller,
            ControllerSpec::Adaptive {
                policy: CrcPolicy::CongestionBalance,
                ..
            }
        ));
    }

    #[test]
    fn train_window_and_mtu_axes_mutate_the_spec() {
        let m = Matrix::new(base())
            .axis(
                "train_window",
                vec![
                    AxisValue::TrainWindow(SimDuration::from_nanos(250)),
                    AxisValue::TrainWindow(SimDuration::from_micros(2)),
                ],
            )
            .axis(
                "mtu",
                vec![
                    AxisValue::Mtu(Bytes::new(1500)),
                    AxisValue::Mtu(Bytes::new(9000)),
                ],
            );
        let jobs = m.expand();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].spec.train_window, SimDuration::from_nanos(250));
        assert_eq!(jobs[0].spec.mtu.as_u64(), 1500);
        assert_eq!(jobs[3].spec.train_window, SimDuration::from_micros(2));
        assert_eq!(jobs[3].spec.mtu.as_u64(), 9000);
        assert_eq!(jobs[0].labels[0].1, "250ns");
        assert_eq!(jobs[3].labels[1].1, "9000B");
        // The knob reaches the engine configuration.
        assert_eq!(
            jobs[0].spec.to_fabric_config().train_window,
            SimDuration::from_nanos(250)
        );
    }

    #[test]
    fn physical_layer_axes_mutate_the_spec_and_reach_the_engine() {
        let m = Matrix::new(base())
            .axis(
                "switch",
                vec![AxisValue::SwitchModel(SwitchModel::store_and_forward())],
            )
            .axis("buffer", vec![AxisValue::PortBuffer(Bytes::from_kib(64))])
            .axis(
                "plp",
                vec![AxisValue::PlpTiming(PlpTiming::default().scaled(10.0))],
            )
            .axis("bypassed", vec![AxisValue::BypassChain(3)]);
        let jobs = m.expand();
        assert_eq!(jobs.len(), 1);
        let spec = &jobs[0].spec;
        assert_eq!(spec.switch.kind, SwitchKind::StoreAndForward);
        assert_eq!(spec.port_buffer.as_u64(), 64 * 1024);
        assert_eq!(spec.plp_timing.split, SimDuration::from_micros(200));
        assert_eq!(spec.phy.bypassed_nodes, 3);
        assert_eq!(jobs[0].labels[0].1, "store-fwd-400ns");
        assert_eq!(jobs[0].labels[1].1, "64KiB");
        assert_eq!(jobs[0].labels[2].1, "split-200us");
        assert_eq!(jobs[0].labels[3].1, "3");
        // The knobs reach the engine configuration.
        let config = spec.to_fabric_config();
        assert_eq!(config.switch.kind, SwitchKind::StoreAndForward);
        assert_eq!(config.port_buffer.as_u64(), 64 * 1024);
        assert_eq!(config.plp_timing.split, SimDuration::from_micros(200));
    }

    #[test]
    fn multi_axis_applies_all_mutations_and_joins_labels() {
        let value = AxisValue::Multi(vec![
            AxisValue::Topology(TopologySpec::grid(4, 4, 2)),
            AxisValue::Upgrade(Some(TopologySpec::torus(4, 4, 1))),
        ]);
        let mut spec = base();
        value.apply(&mut spec);
        assert_eq!(spec.topology.nodes, 16);
        assert_eq!(
            spec.upgrade.as_ref().map(|t| t.name.clone()),
            Some(TopologySpec::torus(4, 4, 1).name)
        );
        let label = value.label();
        assert!(label.contains('+'), "joined label: {label}");
    }

    #[test]
    fn empty_matrix_is_a_single_cell() {
        let m = Matrix::new(base());
        assert_eq!(m.cell_count(), 1);
        let jobs = m.expand();
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].labels.is_empty());
    }
}
