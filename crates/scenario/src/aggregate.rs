//! Per-cell aggregation of job results.
//!
//! Replicates of one cell differ only in seed; the aggregator merges their
//! full latency histograms (so tail percentiles are computed over **all**
//! packets of all replicates, not averaged per-run) and averages the scalar
//! run metrics. This mirrors how the sweep-based evaluations in PL2 and the
//! Slingshot analysis report tail latency across repeated trials.

use crate::runner::{JobOutcome, JobRecord};
use rackfabric_sim::stats::{Histogram, Summary};

/// Aggregate statistics of one matrix cell across its replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Cell index in matrix expansion order.
    pub cell: usize,
    /// `(axis name, value label)` pairs identifying the cell.
    pub labels: Vec<(String, String)>,
    /// Replicates attempted.
    pub runs: usize,
    /// Replicates that panicked.
    pub failed_runs: usize,
    /// Replicates whose every flow completed within the horizon.
    pub completed_runs: usize,
    /// End-to-end packet latency over all replicates' packets (picoseconds).
    pub packet_latency: Summary,
    /// Queueing delay over all replicates' packets (picoseconds).
    pub queueing_latency: Summary,
    /// Total bytes delivered across replicates.
    pub delivered_bytes: u64,
    /// Total packets dropped across replicates.
    pub dropped_packets: u64,
    /// Mean goodput over completed replicates (Gb/s).
    pub mean_goodput_gbps: f64,
    /// Mean job completion time over completed replicates (µs), if any
    /// replicate completed.
    pub mean_job_completion_us: Option<f64>,
    /// Mean of the replicates' mean interconnect power (W).
    pub mean_power_w: f64,
    /// Peak interconnect power seen by any replicate (W).
    pub max_power_w: f64,
    /// Total PLP commands applied across replicates.
    pub plp_commands: u64,
    /// Total whole-topology reconfigurations across replicates.
    pub topology_reconfigurations: u64,
    /// Route-cache hit rate over all replicates' lookups (deterministic).
    pub route_cache_hit_rate: f64,
    /// Total engine events processed across replicates (deterministic).
    pub events_processed: u64,
    /// Total wall-clock nanoseconds across replicates. **Not** deterministic;
    /// reported by perf harnesses, excluded from byte-stable exports.
    pub wall_nanos: u64,
}

impl CellSummary {
    /// Engine events per wall-clock second across the cell's replicates.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.events_processed as f64 * 1e9 / self.wall_nanos as f64
        }
    }
}

/// Groups job records by cell and reduces each group. Records arrive in
/// matrix expansion order (replicates of a cell are contiguous), so this is
/// one linear pass.
pub fn aggregate_cells(records: &[JobRecord]) -> Vec<CellSummary> {
    let mut cells = Vec::new();
    let mut i = 0;
    while i < records.len() {
        let cell_id = records[i].job.cell;
        let start = i;
        while i < records.len() && records[i].job.cell == cell_id {
            i += 1;
        }
        cells.push(reduce_cell(&records[start..i]));
    }
    cells
}

/// Reduces the replicates of one cell into its aggregate summary.
fn reduce_cell(members: &[JobRecord]) -> CellSummary {
    let mut cell = CellSummary {
        cell: members[0].job.cell,
        labels: members[0].job.labels.clone(),
        runs: members.len(),
        failed_runs: 0,
        completed_runs: 0,
        packet_latency: Summary::empty(),
        queueing_latency: Summary::empty(),
        delivered_bytes: 0,
        dropped_packets: 0,
        mean_goodput_gbps: 0.0,
        mean_job_completion_us: None,
        mean_power_w: 0.0,
        max_power_w: 0.0,
        plp_commands: 0,
        topology_reconfigurations: 0,
        route_cache_hit_rate: 0.0,
        events_processed: 0,
        wall_nanos: 0,
    };
    let mut packet_hist = Histogram::new();
    let mut queue_hist = Histogram::new();
    let mut goodput_sum = 0.0;
    let mut completion_sum = 0.0;
    let mut completion_count = 0usize;
    let mut power_sum = 0.0;
    let mut ok_runs = 0usize;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for member in members {
        match &member.outcome {
            JobOutcome::Failed(_) => cell.failed_runs += 1,
            JobOutcome::Completed(result) => {
                ok_runs += 1;
                let s = &result.summary;
                packet_hist.merge(&result.packet_latency);
                queue_hist.merge(&result.queueing_latency);
                cell.delivered_bytes += s.delivered_bytes;
                cell.dropped_packets += s.dropped_packets;
                cell.plp_commands += s.plp_commands as u64;
                cell.topology_reconfigurations += s.topology_reconfigurations as u64;
                cache_hits += s.route_cache_hits;
                cache_misses += s.route_cache_misses;
                cell.events_processed += result.events_processed;
                cell.wall_nanos += result.wall_nanos;
                power_sum += s.mean_power_w;
                cell.max_power_w = cell.max_power_w.max(s.max_power_w);
                if result.all_flows_complete {
                    cell.completed_runs += 1;
                }
                if let Some(us) = s.job_completion_us {
                    completion_sum += us;
                    completion_count += 1;
                    goodput_sum += s.goodput_gbps();
                }
            }
        }
    }
    cell.packet_latency = packet_hist.summary();
    cell.queueing_latency = queue_hist.summary();
    cell.route_cache_hit_rate = rackfabric_topo::cache::RouteCacheStats {
        hits: cache_hits,
        misses: cache_misses,
    }
    .hit_rate();
    if ok_runs > 0 {
        cell.mean_power_w = power_sum / ok_runs as f64;
    }
    if completion_count > 0 {
        cell.mean_job_completion_us = Some(completion_sum / completion_count as f64);
        cell.mean_goodput_gbps = goodput_sum / completion_count as f64;
    }
    cell
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Job;
    use crate::runner::JobResult;
    use crate::spec::{ScenarioSpec, WorkloadSpec};
    use rackfabric::metrics::FabricMetrics;
    use rackfabric_sim::time::{SimDuration, SimTime};
    use rackfabric_sim::units::Bytes;
    use rackfabric_topo::spec::TopologySpec;

    fn record(cell: usize, replicate: usize, latency_ns: u64, complete: bool) -> JobRecord {
        let mut metrics = FabricMetrics::default();
        metrics
            .packet_latency
            .record_duration(SimDuration::from_nanos(latency_ns));
        metrics.delivered_bytes = 1000;
        metrics.delivered_packets.incr();
        if complete {
            metrics.job_completion = Some(SimTime::from_micros(10));
        }
        let result = JobResult {
            summary: metrics.summary(),
            packet_latency: metrics.packet_latency.clone(),
            queueing_latency: metrics.queueing_latency.clone(),
            all_flows_complete: complete,
            events_processed: 10,
            wall_nanos: 1000,
        };
        JobRecord {
            job: Job {
                index: cell * 2 + replicate,
                cell,
                replicate,
                labels: vec![("cell".into(), format!("c{cell}"))],
                spec: ScenarioSpec::new(
                    "agg-unit",
                    TopologySpec::grid(2, 2, 1),
                    WorkloadSpec::shuffle(Bytes::new(100)),
                ),
            },
            outcome: JobOutcome::Completed(Box::new(result)),
        }
    }

    #[test]
    fn merges_histograms_across_replicates() {
        let records = vec![
            record(0, 0, 100, true),
            record(0, 1, 300, true),
            record(1, 0, 500, false),
        ];
        let cells = aggregate_cells(&records);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].runs, 2);
        assert_eq!(cells[0].completed_runs, 2);
        assert_eq!(cells[0].packet_latency.count, 2);
        assert!(cells[0].packet_latency.min < cells[0].packet_latency.max);
        assert_eq!(cells[0].delivered_bytes, 2000);
        assert!(cells[0].mean_job_completion_us.is_some());
        assert_eq!(cells[1].completed_runs, 0);
        assert_eq!(cells[1].mean_job_completion_us, None);
    }

    #[test]
    fn failed_runs_are_counted_but_not_merged() {
        let mut failed = record(0, 1, 100, true);
        failed.outcome = JobOutcome::Failed("boom".into());
        let records = vec![record(0, 0, 100, true), failed];
        let cells = aggregate_cells(&records);
        assert_eq!(cells[0].runs, 2);
        assert_eq!(cells[0].failed_runs, 1);
        assert_eq!(cells[0].packet_latency.count, 1);
    }
}
