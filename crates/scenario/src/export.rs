//! CSV and JSON export of matrix results.
//!
//! Exports are **deterministic text**: the same [`MatrixResult`] always
//! renders to the same bytes, which is how the determinism integration test
//! compares 1-thread and N-thread sweeps, and what `crates/bench` and the
//! examples print for downstream plotting.

use crate::aggregate::CellSummary;
use crate::runner::{JobOutcome, JobRecord, MatrixResult};
use rackfabric_sim::json;

/// Formats an `f64` stably for CSV/JSON (shortest round-trip form, finite
/// values only).
fn num(value: f64) -> String {
    json::number(value)
}

/// Appends one CSV field, quoting it only when it contains a comma or quote.
fn push_csv_field(out: &mut String, value: &str) {
    out.push(',');
    if value.contains(',') || value.contains('"') {
        out.push('"');
        out.push_str(&value.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(value);
    }
}

/// Renders per-cell aggregates as CSV. Axis names become the leading
/// columns.
pub fn cells_to_csv(cells: &[CellSummary]) -> String {
    let mut out = String::new();
    let axis_names: Vec<&str> = cells
        .first()
        .map(|c| c.labels.iter().map(|(k, _)| k.as_str()).collect())
        .unwrap_or_default();
    out.push_str("cell");
    for name in &axis_names {
        out.push(',');
        out.push_str(name);
    }
    out.push_str(
        ",runs,failed_runs,completed_runs,packets,latency_p50_ps,latency_p99_ps,\
         latency_p999_ps,latency_max_ps,queueing_p99_ps,delivered_bytes,dropped_packets,\
         goodput_gbps,job_completion_us,mean_power_w,max_power_w,plp_commands,\
         topology_reconfigs,route_cache_hit_rate,sim_events\n",
    );
    for cell in cells {
        out.push_str(&cell.cell.to_string());
        for (_, value) in &cell.labels {
            push_csv_field(&mut out, value);
        }
        let row = [
            cell.runs.to_string(),
            cell.failed_runs.to_string(),
            cell.completed_runs.to_string(),
            cell.packet_latency.count.to_string(),
            num(cell.packet_latency.p50),
            num(cell.packet_latency.p99),
            num(cell.packet_latency.p999),
            num(cell.packet_latency.max),
            num(cell.queueing_latency.p99),
            cell.delivered_bytes.to_string(),
            cell.dropped_packets.to_string(),
            num(cell.mean_goodput_gbps),
            cell.mean_job_completion_us.map(num).unwrap_or_default(),
            num(cell.mean_power_w),
            num(cell.max_power_w),
            cell.plp_commands.to_string(),
            cell.topology_reconfigurations.to_string(),
            num(cell.route_cache_hit_rate),
            cell.events_processed.to_string(),
        ];
        for field in row {
            out.push(',');
            out.push_str(&field);
        }
        out.push('\n');
    }
    out
}

/// Renders per-cell aggregates as a JSON array of objects.
pub fn cells_to_json(cells: &[CellSummary]) -> String {
    let mut out = String::from("[");
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"cell\": {}", cell.cell));
        out.push_str(", \"labels\": {");
        for (j, (k, v)) in cell.labels.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", json::escape(k), json::escape(v)));
        }
        out.push('}');
        out.push_str(&format!(
            ", \"runs\": {}, \"failed_runs\": {}, \"completed_runs\": {}",
            cell.runs, cell.failed_runs, cell.completed_runs
        ));
        out.push_str(&format!(
            ", \"packet_latency_ps\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
            cell.packet_latency.count,
            num(cell.packet_latency.p50),
            num(cell.packet_latency.p90),
            num(cell.packet_latency.p99),
            num(cell.packet_latency.p999),
            num(cell.packet_latency.max),
        ));
        out.push_str(&format!(
            ", \"queueing_latency_p99_ps\": {}",
            num(cell.queueing_latency.p99)
        ));
        out.push_str(&format!(
            ", \"delivered_bytes\": {}, \"dropped_packets\": {}",
            cell.delivered_bytes, cell.dropped_packets
        ));
        out.push_str(&format!(
            ", \"goodput_gbps\": {}",
            num(cell.mean_goodput_gbps)
        ));
        match cell.mean_job_completion_us {
            Some(us) => out.push_str(&format!(", \"job_completion_us\": {}", num(us))),
            None => out.push_str(", \"job_completion_us\": null"),
        }
        out.push_str(&format!(
            ", \"mean_power_w\": {}, \"max_power_w\": {}",
            num(cell.mean_power_w),
            num(cell.max_power_w)
        ));
        out.push_str(&format!(
            ", \"plp_commands\": {}, \"topology_reconfigs\": {}",
            cell.plp_commands, cell.topology_reconfigurations
        ));
        out.push_str(&format!(
            ", \"route_cache_hit_rate\": {}, \"sim_events\": {}",
            num(cell.route_cache_hit_rate),
            cell.events_processed
        ));
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Renders per-job rows as CSV (one row per replicate, matrix order).
pub fn jobs_to_csv(jobs: &[JobRecord]) -> String {
    let mut out = String::new();
    let axis_names: Vec<&str> = jobs
        .first()
        .map(|r| r.job.labels.iter().map(|(k, _)| k.as_str()).collect())
        .unwrap_or_default();
    out.push_str("job,cell,replicate,seed");
    for name in &axis_names {
        out.push(',');
        out.push_str(name);
    }
    out.push_str(
        ",status,completed,packets,latency_p50_ps,latency_p99_ps,delivered_bytes,\
         dropped_packets,goodput_gbps,job_completion_us,plp_commands\n",
    );
    for record in jobs {
        out.push_str(&format!(
            "{},{},{},{}",
            record.job.index, record.job.cell, record.job.replicate, record.job.spec.seed
        ));
        for (_, value) in &record.job.labels {
            push_csv_field(&mut out, value);
        }
        match &record.outcome {
            // Nine empty fields keep failed rows aligned with the
            // status..plp_commands columns of the header.
            JobOutcome::Failed(_) => out.push_str(",failed,,,,,,,,,\n"),
            JobOutcome::Completed(r) => {
                let s = &r.summary;
                out.push_str(&format!(
                    ",ok,{},{},{},{},{},{},{},{},{}\n",
                    r.all_flows_complete,
                    s.delivered_packets,
                    num(s.packet_latency.p50),
                    num(s.packet_latency.p99),
                    s.delivered_bytes,
                    s.dropped_packets,
                    num(s.goodput_gbps()),
                    s.job_completion_us.map(num).unwrap_or_default(),
                    s.plp_commands,
                ));
            }
        }
    }
    out
}

impl MatrixResult {
    /// Per-cell aggregates as CSV.
    pub fn to_csv(&self) -> String {
        cells_to_csv(&self.cells)
    }

    /// Per-cell aggregates as JSON.
    pub fn to_json(&self) -> String {
        cells_to_json(&self.cells)
    }

    /// Per-job rows as CSV.
    pub fn jobs_csv(&self) -> String {
        jobs_to_csv(&self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{AxisValue, Matrix};
    use crate::runner::Runner;
    use crate::spec::{ScenarioSpec, WorkloadSpec};
    use rackfabric_sim::json;
    use rackfabric_sim::time::SimTime;
    use rackfabric_sim::units::Bytes;
    use rackfabric_topo::spec::TopologySpec;

    fn result() -> MatrixResult {
        let base = ScenarioSpec::new(
            "export-unit",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(1)),
        )
        .horizon(SimTime::from_millis(20));
        let matrix = Matrix::new(base)
            .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
            .replicates(2);
        Runner::new(2).run(&matrix)
    }

    #[test]
    fn csv_has_header_and_one_row_per_cell() {
        let r = result();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 cells:\n{csv}");
        assert!(lines[0].starts_with("cell,load,runs"));
        assert!(lines[1].starts_with("0,0.5,2,"));
        assert!(lines[2].starts_with("1,1,2,"));
    }

    #[test]
    fn jobs_csv_has_one_row_per_job() {
        let r = result();
        let csv = r.jobs_csv();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.lines().nth(1).unwrap().contains(",ok,"));
    }

    #[test]
    fn failed_job_rows_keep_csv_columns_aligned() {
        // The (1-node line × storage) cell panics during flow generation,
        // producing one failed job alongside an ok job.
        let base = ScenarioSpec::new(
            "export-failed",
            TopologySpec::line(1, 1),
            WorkloadSpec::shuffle(Bytes::from_kib(1)),
        )
        .horizon(SimTime::from_millis(20));
        let storage = WorkloadSpec::Storage {
            ops_per_node: 1.0,
            io_size: Bytes::new(100),
            read_fraction: 0.5,
            load: 1.0,
        };
        let matrix = Matrix::new(base).axis(
            "case",
            vec![
                AxisValue::Workload(WorkloadSpec::shuffle(Bytes::from_kib(1))),
                AxisValue::Workload(storage),
            ],
        );
        let result = Runner::new(2).run(&matrix);
        assert_eq!(result.failed_jobs(), 1);
        let csv = result.jobs_csv();
        let header_fields = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(
                line.split(',').count(),
                header_fields,
                "row misaligned with header: {line}"
            );
        }
    }

    #[test]
    fn json_export_parses_back() {
        let r = result();
        let parsed = json::parse(&r.to_json()).unwrap();
        let cells = parsed.as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("runs").unwrap().as_u64(), Some(2));
        assert_eq!(
            cells[1]
                .get("labels")
                .unwrap()
                .get("load")
                .unwrap()
                .as_str(),
            Some("1")
        );
        assert!(
            cells[0]
                .get("packet_latency_ps")
                .unwrap()
                .get("p99")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }
}
