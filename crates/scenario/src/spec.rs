//! Declarative descriptions of a single simulation cell.
//!
//! A [`ScenarioSpec`] captures everything one `Simulator` run needs —
//! topology, workload, physical-layer policy, controller policy, seed and
//! horizon — as plain data, so a [`crate::Matrix`] can clone and mutate it
//! along sweep axes and a [`crate::Runner`] can execute hundreds of cells in
//! parallel with no shared state.

use rackfabric::fabric::FabricConfig;
use rackfabric::policy::CrcPolicy;
use rackfabric_phy::{FecMode, PlpTiming, PowerState};
use rackfabric_sim::config::SimConfig;
use rackfabric_sim::engine::SchedulerKind;
use rackfabric_sim::rng::DetRng;
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Bytes};
use rackfabric_switch::model::SwitchModel;
use rackfabric_topo::routing::RoutingAlgorithm;
use rackfabric_topo::spec::TopologySpec;
use rackfabric_topo::NodeId;
use rackfabric_workload::{
    ArrivalProcess, Flow, FlowSizeDistribution, HotspotWorkload, IncastWorkload, MapReduceShuffle,
    PermutationWorkload, StorageWorkload, UniformWorkload, Workload, WorkloadFlowId,
};
use serde::{Deserialize, Serialize};

/// Which workload a cell runs, with a uniform "load" knob across patterns so
/// a single load axis sweeps any of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// All-to-all MapReduce shuffle; `load` scales the per-pair partition.
    Shuffle {
        /// Bytes each mapper sends each reducer at load 1.0.
        partition: Bytes,
        /// Intensity multiplier.
        load: f64,
    },
    /// Every node sends to node 0; `load` scales the request size.
    Incast {
        /// Bytes per sender at load 1.0.
        request: Bytes,
        /// Intensity multiplier.
        load: f64,
    },
    /// Fixed-point-free permutation; `load` scales the flow size.
    Permutation {
        /// Bytes per flow at load 1.0.
        size: Bytes,
        /// Intensity multiplier.
        load: f64,
    },
    /// Poisson-arriving uniform random pairs; `load` scales the flow count.
    Uniform {
        /// Flows per node at load 1.0.
        flows_per_node: f64,
        /// Bytes per flow.
        size: Bytes,
        /// Mean inter-arrival time of the Poisson process.
        mean_interarrival: SimDuration,
        /// Intensity multiplier.
        load: f64,
    },
    /// Zipf-skewed hotspot traffic; `load` scales the flow count.
    Hotspot {
        /// Flows per node at load 1.0.
        flows_per_node: f64,
        /// Bytes per flow.
        size: Bytes,
        /// Zipf exponent (0 = uniform, 1–2 = strongly skewed).
        zipf_exponent: f64,
        /// Intensity multiplier.
        load: f64,
    },
    /// A single flow from node 0 to the highest-numbered node; `load` scales
    /// the flow size. The probe workload behind the per-hop latency figures
    /// (fig. 1 and the bypass experiment): on a line topology it traverses
    /// every switch exactly once.
    SingleFlow {
        /// Bytes carried at load 1.0.
        size: Bytes,
        /// Intensity multiplier.
        load: f64,
    },
    /// Disaggregated-storage I/O against the last quarter of the rack's
    /// sleds; `load` scales the operation count.
    Storage {
        /// I/O operations per compute sled at load 1.0.
        ops_per_node: f64,
        /// Bytes per I/O.
        io_size: Bytes,
        /// Fraction of operations that are reads.
        read_fraction: f64,
        /// Intensity multiplier.
        load: f64,
    },
}

impl WorkloadSpec {
    /// A shuffle at load 1.0.
    pub fn shuffle(partition: Bytes) -> Self {
        WorkloadSpec::Shuffle {
            partition,
            load: 1.0,
        }
    }

    /// An incast at load 1.0.
    pub fn incast(request: Bytes) -> Self {
        WorkloadSpec::Incast { request, load: 1.0 }
    }

    /// A permutation at load 1.0.
    pub fn permutation(size: Bytes) -> Self {
        WorkloadSpec::Permutation { size, load: 1.0 }
    }

    /// Uniform Poisson traffic at load 1.0.
    pub fn uniform(flows_per_node: f64, size: Bytes) -> Self {
        WorkloadSpec::Uniform {
            flows_per_node,
            size,
            mean_interarrival: SimDuration::from_micros(2),
            load: 1.0,
        }
    }

    /// A single end-to-end probe flow at load 1.0.
    pub fn single_flow(size: Bytes) -> Self {
        WorkloadSpec::SingleFlow { size, load: 1.0 }
    }

    /// Returns the spec with its intensity multiplier replaced — the hook the
    /// load axis uses.
    pub fn with_load(mut self, new_load: f64) -> Self {
        match &mut self {
            WorkloadSpec::Shuffle { load, .. }
            | WorkloadSpec::Incast { load, .. }
            | WorkloadSpec::Permutation { load, .. }
            | WorkloadSpec::Uniform { load, .. }
            | WorkloadSpec::Hotspot { load, .. }
            | WorkloadSpec::SingleFlow { load, .. }
            | WorkloadSpec::Storage { load, .. } => *load = new_load,
        }
        self
    }

    /// The current intensity multiplier.
    pub fn load(&self) -> f64 {
        match self {
            WorkloadSpec::Shuffle { load, .. }
            | WorkloadSpec::Incast { load, .. }
            | WorkloadSpec::Permutation { load, .. }
            | WorkloadSpec::Uniform { load, .. }
            | WorkloadSpec::Hotspot { load, .. }
            | WorkloadSpec::SingleFlow { load, .. }
            | WorkloadSpec::Storage { load, .. } => *load,
        }
    }

    /// Short name for cell labels and CSV columns.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Shuffle { .. } => "shuffle".into(),
            WorkloadSpec::Incast { .. } => "incast".into(),
            WorkloadSpec::Permutation { .. } => "permutation".into(),
            WorkloadSpec::Uniform { .. } => "uniform".into(),
            WorkloadSpec::Hotspot { .. } => "hotspot".into(),
            WorkloadSpec::SingleFlow { .. } => "single-flow".into(),
            WorkloadSpec::Storage { .. } => "storage".into(),
        }
    }

    /// Generates the flows for a rack of `nodes` sleds.
    pub fn generate(&self, nodes: usize, rng: &mut DetRng) -> Vec<Flow> {
        let scaled = |bytes: Bytes, load: f64| {
            Bytes::new(((bytes.as_u64() as f64 * load).round() as u64).max(1))
        };
        match self {
            WorkloadSpec::Shuffle { partition, load } => {
                MapReduceShuffle::all_to_all(nodes, scaled(*partition, *load)).generate(rng)
            }
            WorkloadSpec::Incast { request, load } => IncastWorkload {
                sink: NodeId(0),
                senders: (0..nodes as u32).map(NodeId).collect(),
                request_size: scaled(*request, *load),
                start: SimTime::ZERO,
            }
            .generate(rng),
            WorkloadSpec::Permutation { size, load } => PermutationWorkload {
                nodes,
                sizes: FlowSizeDistribution::Fixed(scaled(*size, *load)),
                arrivals: ArrivalProcess::AllAtOnce(SimTime::ZERO),
            }
            .generate(rng),
            WorkloadSpec::Uniform {
                flows_per_node,
                size,
                mean_interarrival,
                load,
            } => UniformWorkload {
                nodes,
                flows: ((flows_per_node * load * nodes as f64).round() as usize).max(1),
                sizes: FlowSizeDistribution::Fixed(*size),
                arrivals: ArrivalProcess::Poisson {
                    mean_interarrival: *mean_interarrival,
                    start: SimTime::ZERO,
                },
            }
            .generate(rng),
            WorkloadSpec::Hotspot {
                flows_per_node,
                size,
                zipf_exponent,
                load,
            } => HotspotWorkload {
                nodes,
                flows: ((flows_per_node * load * nodes as f64).round() as usize).max(1),
                zipf_exponent: *zipf_exponent,
                sizes: FlowSizeDistribution::Fixed(*size),
                arrivals: ArrivalProcess::AllAtOnce(SimTime::ZERO),
            }
            .generate(rng),
            WorkloadSpec::SingleFlow { size, load } => vec![Flow {
                id: WorkloadFlowId(0),
                src: NodeId(0),
                dst: NodeId(nodes.saturating_sub(1) as u32),
                size: scaled(*size, *load),
                start_at: SimTime::ZERO,
            }],
            WorkloadSpec::Storage {
                ops_per_node,
                io_size,
                read_fraction,
                load,
            } => {
                // The last quarter of the rack (at least one sled) serves as
                // NVMe storage; the rest are compute. A 1-node rack has no
                // compute sleds left and StorageWorkload panics — the runner
                // records that cell as failed.
                let storage_count = (nodes / 4).max(1);
                let split = nodes - storage_count;
                let compute: Vec<NodeId> = (0..split as u32).map(NodeId).collect();
                let storage: Vec<NodeId> = (split as u32..nodes as u32).map(NodeId).collect();
                let compute_count = compute.len().max(1);
                StorageWorkload {
                    compute_nodes: compute,
                    storage_nodes: storage,
                    operations: ((ops_per_node * load * compute_count as f64).round() as usize)
                        .max(1),
                    read_fraction: *read_fraction,
                    io_size: *io_size,
                    arrivals: ArrivalProcess::AllAtOnce(SimTime::ZERO),
                }
                .generate(rng)
            }
        }
    }
}

/// Initial FEC configuration applied to every link before the run starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FecSetting {
    /// Leave the media's default codec in place.
    Default,
    /// Force a codec on every link.
    Fixed(FecMode),
}

impl FecSetting {
    /// Short name for cell labels.
    pub fn label(&self) -> String {
        match self {
            FecSetting::Default => "default".into(),
            FecSetting::Fixed(FecMode::None) => "none".into(),
            FecSetting::Fixed(FecMode::FireCode) => "firecode".into(),
            FecSetting::Fixed(FecMode::Rs528) => "rs528".into(),
            FecSetting::Fixed(FecMode::Rs544) => "rs544".into(),
        }
    }
}

/// Physical-layer policy of a cell: the initial PLP state the rack boots
/// with (the CRC may change it afterwards when the controller is adaptive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyPolicy {
    /// Initial FEC codec.
    pub fec: FecSetting,
    /// Cap on initially active lanes per link (`None` = all lanes up).
    pub active_lanes: Option<usize>,
    /// Initial power state of every link.
    pub power: PowerState,
    /// Install PHY-level bypasses at the first `n` intermediate nodes of the
    /// node-id chain `0 -> 1 -> 2 -> ...` before the run starts (PLP #2).
    /// Meaningful on line topologies, where the chain is the unique path;
    /// nodes without both chain links are skipped.
    pub bypassed_nodes: usize,
}

impl Default for PhyPolicy {
    fn default() -> Self {
        PhyPolicy {
            fec: FecSetting::Default,
            active_lanes: None,
            power: PowerState::Active,
            bypassed_nodes: 0,
        }
    }
}

impl PhyPolicy {
    /// Short composite label ("fec=rs544,lanes=2").
    pub fn label(&self) -> String {
        let mut parts = vec![format!("fec={}", self.fec.label())];
        if let Some(lanes) = self.active_lanes {
            parts.push(format!("lanes={lanes}"));
        }
        if self.power != PowerState::Active {
            parts.push(format!("power={:?}", self.power).to_lowercase());
        }
        if self.bypassed_nodes > 0 {
            parts.push(format!("bypass={}", self.bypassed_nodes));
        }
        parts.join(",")
    }
}

/// Controller policy of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControllerSpec {
    /// Static packet-switched baseline: no CRC, shortest-hop routing.
    Baseline,
    /// Closed Ring Control with the given policy, epoch and routing.
    Adaptive {
        /// What the CRC optimises for.
        policy: CrcPolicy,
        /// Telemetry/decision epoch.
        epoch: SimDuration,
        /// Routing algorithm used when admitting flows.
        routing: RoutingAlgorithm,
    },
}

impl ControllerSpec {
    /// The paper's default adaptive controller.
    pub fn adaptive_default() -> Self {
        ControllerSpec::Adaptive {
            policy: CrcPolicy::default(),
            epoch: SimDuration::from_micros(20),
            routing: RoutingAlgorithm::MinCost,
        }
    }

    /// Short name for cell labels.
    pub fn label(&self) -> String {
        match self {
            ControllerSpec::Baseline => "baseline".into(),
            ControllerSpec::Adaptive { policy, .. } => policy.name().into(),
        }
    }
}

/// A complete, declarative description of one simulation cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario family name, recorded in exports.
    pub name: String,
    /// The topology the rack starts in.
    pub topology: TopologySpec,
    /// Topology the CRC may escalate to (`None` disables escalation).
    pub upgrade: Option<TopologySpec>,
    /// The traffic the cell runs.
    pub workload: WorkloadSpec,
    /// Initial physical-layer state.
    pub phy: PhyPolicy,
    /// Control-plane configuration.
    pub controller: ControllerSpec,
    /// Per-lane signalling rate.
    pub lane_rate: BitRate,
    /// The switch datapath model used at every node (forwarding discipline
    /// plus pipeline latency).
    pub switch: SwitchModel,
    /// Egress buffer per port (tail drop beyond it, ECN above half).
    pub port_buffer: Bytes,
    /// Reconfiguration-latency table charged per PLP command class.
    pub plp_timing: PlpTiming,
    /// Packetisation size.
    pub mtu: Bytes,
    /// Rate window sizing packet trains: each drain event transmits up to
    /// `capacity × train_window` bytes of MTU frames back-to-back. Larger
    /// windows collapse more events per train at the cost of coarser
    /// interleaving.
    pub train_window: SimDuration,
    /// Routing-policy override. `None` keeps whatever the controller lowers
    /// to (shortest-hop for `Baseline`, the CRC's configured algorithm for
    /// `Adaptive`); `Some` replaces it, which is how a static baseline fabric
    /// runs Valiant or adaptive (UGAL-style) routing without a controller.
    pub routing: Option<RoutingAlgorithm>,
    /// Master seed (replaced per job by the matrix expansion).
    pub seed: u64,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// Livelock guard on processed events.
    pub event_budget: u64,
    /// Stop as soon as every flow completes.
    pub stop_when_done: bool,
    /// Which pending-event-set implementation drives the run. Results are
    /// scheduler-independent; sweeps use this to cross-check the calendar
    /// engine against the reference heap.
    pub scheduler: SchedulerKind,
    /// Which engine runs the cell: `0` is the monolithic single-core engine
    /// (`run_fabric`); `n >= 1` is the sharded multi-rack engine partitioned
    /// into `n` rack groups. Sharded results are byte-identical for every
    /// `n >= 1` — sweeps put a shards axis on a matrix to cross-check the
    /// 1-shard reference against N-shard parallel runs — but are a
    /// different model from the monolithic engine (flow acks have latency).
    pub shards: usize,
}

impl ScenarioSpec {
    /// A named scenario over `topology` running `workload` with the default
    /// adaptive controller, a 50 ms horizon and seed 1.
    pub fn new(
        name: impl Into<String>,
        topology: TopologySpec,
        workload: WorkloadSpec,
    ) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            topology,
            upgrade: None,
            workload,
            phy: PhyPolicy::default(),
            controller: ControllerSpec::adaptive_default(),
            lane_rate: BitRate::from_gbps(25),
            switch: SwitchModel::cut_through(),
            port_buffer: Bytes::from_kib(256),
            plp_timing: PlpTiming::default(),
            mtu: Bytes::new(1500),
            train_window: SimDuration::from_micros(1),
            routing: None,
            seed: 1,
            horizon: SimTime::from_millis(50),
            event_budget: u64::MAX,
            stop_when_done: true,
            scheduler: SchedulerKind::default(),
            shards: 0,
        }
    }

    /// Sets the engine scheduler, returning the modified spec.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects the sharded engine with `n` rack groups (`0` reverts to the
    /// monolithic engine), returning the modified spec.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the escalation topology, returning the modified spec.
    pub fn upgrade(mut self, target: TopologySpec) -> Self {
        self.upgrade = Some(target);
        self
    }

    /// Sets the controller, returning the modified spec.
    pub fn controller(mut self, controller: ControllerSpec) -> Self {
        self.controller = controller;
        self
    }

    /// Sets the physical-layer policy, returning the modified spec.
    pub fn phy(mut self, phy: PhyPolicy) -> Self {
        self.phy = phy;
        self
    }

    /// Sets the switch datapath model, returning the modified spec.
    pub fn switch_model(mut self, switch: SwitchModel) -> Self {
        self.switch = switch;
        self
    }

    /// Sets the per-port egress buffer, returning the modified spec.
    pub fn port_buffer(mut self, buffer: Bytes) -> Self {
        self.port_buffer = buffer;
        self
    }

    /// Sets the PLP reconfiguration-latency table, returning the modified
    /// spec.
    pub fn plp_timing(mut self, timing: PlpTiming) -> Self {
        self.plp_timing = timing;
        self
    }

    /// Sets whether the run stops as soon as every flow completes, returning
    /// the modified spec (`false` runs to the horizon — open-loop power and
    /// utilisation studies).
    pub fn stop_when_done(mut self, stop: bool) -> Self {
        self.stop_when_done = stop;
        self
    }

    /// Sets the packet-train rate window, returning the modified spec.
    pub fn train_window(mut self, window: SimDuration) -> Self {
        self.train_window = window;
        self
    }

    /// Overrides the routing policy regardless of controller, returning the
    /// modified spec.
    pub fn routing(mut self, routing: RoutingAlgorithm) -> Self {
        self.routing = Some(routing);
        self
    }

    /// Sets the packetisation size, returning the modified spec.
    pub fn mtu(mut self, mtu: Bytes) -> Self {
        self.mtu = mtu;
        self
    }

    /// Sets the horizon, returning the modified spec.
    pub fn horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the seed, returning the modified spec.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of sleds in the rack.
    pub fn nodes(&self) -> usize {
        self.topology.nodes
    }

    /// Generates this cell's flows (deterministic in `self.seed`).
    pub fn build_flows(&self) -> Vec<Flow> {
        let mut rng = DetRng::new(self.seed);
        self.workload.generate(self.nodes(), &mut rng)
    }

    /// Lowers the spec into the fabric configuration the core crate runs.
    pub fn to_fabric_config(&self) -> FabricConfig {
        let mut config = match self.controller {
            ControllerSpec::Baseline => FabricConfig::baseline(self.topology.clone()),
            ControllerSpec::Adaptive {
                policy,
                epoch,
                routing,
            } => {
                let mut c = FabricConfig::adaptive(self.topology.clone());
                c.crc.policy = policy;
                c.crc.epoch = epoch;
                c.routing = routing;
                c
            }
        };
        if let Some(routing) = self.routing {
            config.routing = routing;
        }
        config.upgrade_spec = self.upgrade.clone();
        config.lane_rate = self.lane_rate;
        config.switch = self.switch;
        config.port_buffer = self.port_buffer;
        config.plp_timing = self.plp_timing;
        config.mtu = self.mtu;
        config.train_window = self.train_window;
        config.stop_when_done = self.stop_when_done;
        config.sim = SimConfig::with_seed(self.seed)
            .horizon(self.horizon)
            .event_budget(self.event_budget)
            .label(self.name.clone());
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_override_beats_the_controller_default() {
        let spec = ScenarioSpec::new(
            "routing-override",
            TopologySpec::grid(3, 3, 1),
            WorkloadSpec::shuffle(Bytes::from_kib(8)),
        );
        // The adaptive controller lowers to MinCost; the override replaces it.
        let adaptive = spec.clone().routing(RoutingAlgorithm::Valiant);
        assert_eq!(
            adaptive.to_fabric_config().routing,
            RoutingAlgorithm::Valiant
        );
        // A baseline fabric has no controller to pick routing, but the
        // override still applies — static fabrics can run adaptive routing.
        let baseline = spec
            .controller(ControllerSpec::Baseline)
            .routing(RoutingAlgorithm::Adaptive);
        assert_eq!(
            baseline.to_fabric_config().routing,
            RoutingAlgorithm::Adaptive
        );
    }

    #[test]
    fn workload_load_scales_shuffle_partitions() {
        let base = WorkloadSpec::shuffle(Bytes::from_kib(8));
        let mut rng = DetRng::new(1);
        let light = base.clone().with_load(0.5).generate(4, &mut rng);
        let mut rng = DetRng::new(1);
        let heavy = base.with_load(2.0).generate(4, &mut rng);
        assert_eq!(light.len(), heavy.len());
        assert_eq!(light[0].size.as_u64() * 4, heavy[0].size.as_u64());
    }

    #[test]
    fn workload_load_scales_uniform_flow_count() {
        let base = WorkloadSpec::uniform(4.0, Bytes::from_kib(16));
        let mut rng = DetRng::new(2);
        let light = base.clone().with_load(0.25).generate(16, &mut rng);
        let mut rng = DetRng::new(2);
        let heavy = base.with_load(1.0).generate(16, &mut rng);
        assert_eq!(light.len(), 16);
        assert_eq!(heavy.len(), 64);
    }

    #[test]
    fn storage_workload_splits_the_rack() {
        let w = WorkloadSpec::Storage {
            ops_per_node: 2.0,
            io_size: Bytes::from_kib(64),
            read_fraction: 1.0,
            load: 1.0,
        };
        let mut rng = DetRng::new(3);
        let flows = w.generate(16, &mut rng);
        // Reads flow storage (12..16) -> compute (0..12).
        assert!(flows
            .iter()
            .all(|f| f.src.index() >= 12 && f.dst.index() < 12));
        assert_eq!(flows.len(), 24);
    }

    #[test]
    fn spec_lowers_to_the_expected_fabric_config() {
        let spec = ScenarioSpec::new(
            "unit",
            TopologySpec::grid(3, 3, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(4)),
        )
        .upgrade(TopologySpec::torus(3, 3, 1))
        .seed(77)
        .horizon(SimTime::from_millis(10));
        let config = spec.to_fabric_config();
        assert!(config.adaptive);
        assert_eq!(config.sim.seed, 77);
        assert_eq!(config.sim.label, "unit");
        assert_eq!(
            config.upgrade_spec.as_ref().unwrap().name,
            TopologySpec::torus(3, 3, 1).name
        );

        let baseline = spec.controller(ControllerSpec::Baseline).to_fabric_config();
        assert!(!baseline.adaptive);
    }

    #[test]
    fn flows_are_deterministic_in_the_seed() {
        let spec = ScenarioSpec::new(
            "det",
            TopologySpec::grid(4, 4, 2),
            WorkloadSpec::uniform(2.0, Bytes::from_kib(8)),
        )
        .seed(9);
        assert_eq!(spec.build_flows(), spec.build_flows());
        assert_ne!(spec.build_flows(), spec.clone().seed(10).build_flows());
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(WorkloadSpec::shuffle(Bytes::new(1)).label(), "shuffle");
        assert_eq!(FecSetting::Fixed(FecMode::Rs544).label(), "rs544");
        assert_eq!(ControllerSpec::Baseline.label(), "baseline");
        assert_eq!(ControllerSpec::adaptive_default().label(), "hybrid");
        assert_eq!(PhyPolicy::default().label(), "fec=default");
    }
}
