//! Content-addressed job keys.
//!
//! A [`JobKey`] is a 128-bit FNV-1a hash of the **canonical JSON** rendering
//! of a fully resolved [`ScenarioSpec`] — the complete simulation input. Two
//! specs get the same key exactly when the engine is guaranteed to produce
//! byte-identical results for them, so the key deliberately **excludes**
//! every knob that is proven result-neutral:
//!
//! * the scheduler choice (`SchedulerKind`) — heap and calendar deliver
//!   events in identical order (`crates/sim/tests/scheduler_equivalence.rs`),
//! * the shard **count** — every `shards >= 1` run is byte-identical
//!   (`tests/shard_determinism.rs`); only the engine *kind* (monolithic vs
//!   sharded, a genuinely different model) is keyed,
//! * worker/thread counts — never part of the spec at all,
//! * the campaign and topology display names — labels, not inputs.
//!
//! Everything that does shape results — topology edges, workload, PHY
//! policy (FEC, lanes, power, bypass chains), controller, lane rate, switch
//! model, port buffers, PLP timing table, MTU, train window, seed, horizon,
//! event budget — is serialised field by field, with canonical key ordering
//! via [`json::canonical`], so the hash is stable across axis orderings and
//! code-level field reorderings.

use rackfabric::policy::CrcPolicy;
use rackfabric_phy::{FecMode, PowerState};
use rackfabric_scenario::spec::{ControllerSpec, FecSetting, ScenarioSpec, WorkloadSpec};
use rackfabric_sim::json::{self, JsonValue};
use rackfabric_switch::model::SwitchKind;
use rackfabric_topo::spec::TopologySpec;
use std::fmt;

/// A 128-bit content hash identifying one fully resolved job spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub u128);

impl JobKey {
    /// The key as 32 lowercase hex characters (the store's file name).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-hex-character form back into a key.
    pub fn from_hex(hex: &str) -> Option<JobKey> {
        if hex.len() != 32 {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(JobKey)
    }
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// FNV-1a over `bytes`, 128-bit variant.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The canonical JSON preimage of a spec's key: every result-shaping field,
/// rendered with sorted object keys and no whitespace. This is what gets
/// hashed, and also what the store records next to each result for
/// debugging.
pub fn canonical_spec_json(spec: &ScenarioSpec) -> String {
    json::canonical(&spec_value(spec))
}

/// The content-addressed key of a fully resolved spec.
pub fn job_key(spec: &ScenarioSpec) -> JobKey {
    JobKey(fnv1a_128(canonical_spec_json(spec).as_bytes()))
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn uint(v: u64) -> JsonValue {
    JsonValue::Number(v.to_string())
}

fn float(v: f64) -> JsonValue {
    JsonValue::Number(json::number(v))
}

fn string(s: &str) -> JsonValue {
    JsonValue::String(s.to_string())
}

fn spec_value(spec: &ScenarioSpec) -> JsonValue {
    // `spec.name`, `spec.scheduler` and the shard count are intentionally
    // absent — see the module docs.
    let engine = if spec.shards == 0 {
        "monolithic"
    } else {
        "sharded"
    };
    obj(vec![
        ("controller", controller_value(&spec.controller)),
        ("engine", string(engine)),
        ("event_budget", uint(spec.event_budget)),
        ("horizon_ps", uint(spec.horizon.as_picos())),
        ("lane_rate_bps", uint(spec.lane_rate.as_bps())),
        ("mtu_bytes", uint(spec.mtu.as_u64())),
        (
            "phy",
            obj(vec![
                ("bypassed_nodes", uint(spec.phy.bypassed_nodes as u64)),
                ("fec", string(&fec_name(&spec.phy.fec))),
                (
                    "lanes",
                    match spec.phy.active_lanes {
                        Some(n) => uint(n as u64),
                        None => JsonValue::Null,
                    },
                ),
                ("power", string(power_name(spec.phy.power))),
            ]),
        ),
        (
            "plp_timing",
            obj(vec![
                ("bundle_ps", uint(spec.plp_timing.bundle.as_picos())),
                ("bypass_ps", uint(spec.plp_timing.bypass.as_picos())),
                ("move_lanes_ps", uint(spec.plp_timing.move_lanes.as_picos())),
                (
                    "set_active_lanes_ps",
                    uint(spec.plp_timing.set_active_lanes.as_picos()),
                ),
                ("set_fec_ps", uint(spec.plp_timing.set_fec.as_picos())),
                ("set_power_ps", uint(spec.plp_timing.set_power.as_picos())),
                ("split_ps", uint(spec.plp_timing.split.as_picos())),
            ]),
        ),
        ("port_buffer_bytes", uint(spec.port_buffer.as_u64())),
        (
            // The spec-level routing override. `controller-default` means the
            // lowered config keeps the controller's choice (shortest-hop for
            // baseline, the CRC routing recorded under `controller` above).
            "routing",
            match spec.routing {
                Some(r) => string(&format!("{r:?}")),
                None => string("controller-default"),
            },
        ),
        ("seed", uint(spec.seed)),
        (
            "switch",
            obj(vec![
                (
                    "kind",
                    string(match spec.switch.kind {
                        SwitchKind::CutThrough => "cut_through",
                        SwitchKind::StoreAndForward => "store_and_forward",
                    }),
                ),
                ("pipeline_ps", uint(spec.switch.pipeline_latency.as_picos())),
            ]),
        ),
        ("stop_when_done", JsonValue::Bool(spec.stop_when_done)),
        ("topology", topology_value(&spec.topology)),
        ("train_window_ps", uint(spec.train_window.as_picos())),
        (
            "upgrade",
            match &spec.upgrade {
                Some(t) => topology_value(t),
                None => JsonValue::Null,
            },
        ),
        ("workload", workload_value(&spec.workload)),
    ])
}

fn topology_value(t: &TopologySpec) -> JsonValue {
    // The display name is excluded: instantiation consumes only the node
    // count and the edge list, so renaming a spec must not invalidate the
    // cache. Edges are serialised exactly (endpoints, lanes, length, media,
    // link class — the class steers the conservative lookahead, so it
    // shapes sharded results).
    let edges: Vec<JsonValue> = t
        .edges
        .iter()
        .map(|e| {
            JsonValue::Array(vec![
                uint(e.a.0 as u64),
                uint(e.b.0 as u64),
                uint(e.lanes as u64),
                uint(e.length.as_mm()),
                string(&format!("{:?}", e.media)),
                string(&format!("{:?}", e.class)),
            ])
        })
        .collect();
    obj(vec![
        (
            "dims",
            match t.dims {
                Some((r, c)) => JsonValue::Array(vec![uint(r as u64), uint(c as u64)]),
                None => JsonValue::Null,
            },
        ),
        ("edges", JsonValue::Array(edges)),
        ("kind", string(&format!("{:?}", t.kind))),
        ("nodes", uint(t.nodes as u64)),
    ])
}

fn controller_value(c: &ControllerSpec) -> JsonValue {
    match c {
        ControllerSpec::Baseline => obj(vec![("kind", string("baseline"))]),
        ControllerSpec::Adaptive {
            policy,
            epoch,
            routing,
        } => obj(vec![
            ("epoch_ps", uint(epoch.as_picos())),
            ("kind", string("adaptive")),
            ("policy", policy_value(policy)),
            ("routing", string(&format!("{routing:?}"))),
        ]),
    }
}

fn policy_value(p: &CrcPolicy) -> JsonValue {
    match p {
        CrcPolicy::LatencyMinimize => obj(vec![("kind", string("latency_minimize"))]),
        CrcPolicy::CongestionBalance => obj(vec![("kind", string("congestion_balance"))]),
        CrcPolicy::PowerCap { budget } => obj(vec![
            ("budget_mw", uint(budget.as_milliwatts())),
            ("kind", string("power_cap")),
        ]),
        CrcPolicy::Hybrid { budget } => obj(vec![
            ("budget_mw", uint(budget.as_milliwatts())),
            ("kind", string("hybrid")),
        ]),
    }
}

fn fec_name(f: &FecSetting) -> String {
    match f {
        FecSetting::Default => "default".into(),
        FecSetting::Fixed(FecMode::None) => "none".into(),
        FecSetting::Fixed(FecMode::FireCode) => "firecode".into(),
        FecSetting::Fixed(FecMode::Rs528) => "rs528".into(),
        FecSetting::Fixed(FecMode::Rs544) => "rs544".into(),
    }
}

fn power_name(p: PowerState) -> &'static str {
    match p {
        PowerState::Active => "active",
        PowerState::LowPower => "low_power",
        PowerState::Off => "off",
    }
}

fn workload_value(w: &WorkloadSpec) -> JsonValue {
    match w {
        WorkloadSpec::Shuffle { partition, load } => obj(vec![
            ("kind", string("shuffle")),
            ("load", float(*load)),
            ("partition_bytes", uint(partition.as_u64())),
        ]),
        WorkloadSpec::Incast { request, load } => obj(vec![
            ("kind", string("incast")),
            ("load", float(*load)),
            ("request_bytes", uint(request.as_u64())),
        ]),
        WorkloadSpec::Permutation { size, load } => obj(vec![
            ("kind", string("permutation")),
            ("load", float(*load)),
            ("size_bytes", uint(size.as_u64())),
        ]),
        WorkloadSpec::SingleFlow { size, load } => obj(vec![
            ("kind", string("single_flow")),
            ("load", float(*load)),
            ("size_bytes", uint(size.as_u64())),
        ]),
        WorkloadSpec::Uniform {
            flows_per_node,
            size,
            mean_interarrival,
            load,
        } => obj(vec![
            ("flows_per_node", float(*flows_per_node)),
            ("kind", string("uniform")),
            ("load", float(*load)),
            ("mean_interarrival_ps", uint(mean_interarrival.as_picos())),
            ("size_bytes", uint(size.as_u64())),
        ]),
        WorkloadSpec::Hotspot {
            flows_per_node,
            size,
            zipf_exponent,
            load,
        } => obj(vec![
            ("flows_per_node", float(*flows_per_node)),
            ("kind", string("hotspot")),
            ("load", float(*load)),
            ("size_bytes", uint(size.as_u64())),
            ("zipf_exponent", float(*zipf_exponent)),
        ]),
        WorkloadSpec::Storage {
            ops_per_node,
            io_size,
            read_fraction,
            load,
        } => obj(vec![
            ("io_size_bytes", uint(io_size.as_u64())),
            ("kind", string("storage")),
            ("load", float(*load)),
            ("ops_per_node", float(*ops_per_node)),
            ("read_fraction", float(*read_fraction)),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sim::engine::SchedulerKind;
    use rackfabric_sim::time::{SimDuration, SimTime};
    use rackfabric_sim::units::Bytes;

    fn base() -> ScenarioSpec {
        ScenarioSpec::new(
            "key-unit",
            TopologySpec::grid(3, 3, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(4)),
        )
        .horizon(SimTime::from_millis(10))
        .seed(42)
    }

    #[test]
    fn key_is_deterministic_and_hexes_round_trip() {
        let k = job_key(&base());
        assert_eq!(k, job_key(&base()));
        assert_eq!(JobKey::from_hex(&k.hex()), Some(k));
        assert_eq!(k.hex().len(), 32);
    }

    #[test]
    fn result_shaping_fields_change_the_key() {
        let k = job_key(&base());
        assert_ne!(k, job_key(&base().seed(43)));
        assert_ne!(k, job_key(&base().horizon(SimTime::from_millis(11))));
        assert_ne!(k, job_key(&base().mtu(Bytes::new(9000))));
        assert_ne!(
            k,
            job_key(&base().train_window(SimDuration::from_nanos(100)))
        );
        assert_ne!(k, job_key(&base().controller(ControllerSpec::Baseline)));
        // Monolithic vs sharded is a model change.
        assert_ne!(k, job_key(&base().shards(1)));
    }

    #[test]
    fn physical_layer_knobs_change_the_key() {
        use rackfabric_phy::PlpTiming;
        use rackfabric_sim::units::{Bytes, Length};
        use rackfabric_switch::model::SwitchModel;

        let k = job_key(&base());
        assert_ne!(
            k,
            job_key(&base().switch_model(SwitchModel::store_and_forward())),
            "forwarding discipline shapes per-hop latency"
        );
        assert_ne!(
            k,
            job_key(&base().switch_model(SwitchModel::with_pipeline(SimDuration::from_nanos(250)))),
            "pipeline latency shapes per-hop latency"
        );
        assert_ne!(
            k,
            job_key(&base().port_buffer(Bytes::from_kib(64))),
            "buffer depth shapes drops and queueing"
        );
        assert_ne!(
            k,
            job_key(&base().plp_timing(PlpTiming::default().scaled(10.0))),
            "reconfiguration cost shapes adaptive runs"
        );
        let mut bypassed = base();
        bypassed.phy.bypassed_nodes = 2;
        assert_ne!(k, job_key(&bypassed), "bypass chains shape the datapath");
        let mut spaced = base();
        spaced.topology = spaced.topology.with_rack_spacing(Length::from_m(20));
        assert_ne!(
            k,
            job_key(&spaced),
            "inter-rack cable length shapes propagation delay and lookahead"
        );
    }

    #[test]
    fn result_neutral_fields_do_not_change_the_key() {
        let k = job_key(&base());
        // Scheduler choice never affects results.
        assert_eq!(k, job_key(&base().scheduler(SchedulerKind::Heap)));
        // Campaign name is a label.
        let mut renamed = base();
        renamed.name = "other-name".into();
        assert_eq!(k, job_key(&renamed));
        // Every shard count >= 1 is byte-identical.
        assert_eq!(job_key(&base().shards(1)), job_key(&base().shards(4)));
        // Topology display name is a label.
        let mut t = TopologySpec::grid(3, 3, 2);
        t.name = "renamed-topology".into();
        let mut spec = base();
        spec.topology = t;
        assert_eq!(k, job_key(&spec));
    }

    #[test]
    fn canonical_json_parses_and_is_sorted() {
        let text = canonical_spec_json(&base());
        let doc = rackfabric_sim::json::parse(&text).unwrap();
        assert_eq!(doc.get("engine").unwrap().as_str(), Some("monolithic"));
        assert!(doc.get("scheduler").is_none());
        let keys: Vec<&str> = doc
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
