//! The sweep orchestrator: resume → budget → report.
//!
//! A [`Sweep`] wraps a scenario [`Matrix`] and drives it through a
//! [`ResultStore`]: every job's outcome is looked up by its content key
//! first, only the misses are dispatched to the scenario [`Runner`]
//! (via its incremental [`Runner::run_jobs`] hook), and fresh results are
//! persisted before aggregation. Re-running an unchanged campaign against a
//! warm store therefore executes **zero** jobs and reproduces byte-identical
//! exports; editing one axis value re-executes only the cells that contain
//! it.
//!
//! With a [`BudgetPolicy`] attached, the fixed replicate count is replaced
//! by convergence-driven replication: every cell starts at the policy
//! minimum and grows until its p99 confidence interval is narrow enough (or
//! a budget runs out). Replicate seeds in budgeted mode are **content
//! keyed** — derived from the master seed and the cell's own canonical spec
//! hash — so a cell keeps its seed schedule no matter how axes are
//! reordered or what other cells exist.
//!
//! `max_new_jobs` models interruption: the sweep stops dispatching after
//! that many fresh executions (cache hits don't count) and returns a
//! partial result; a later run against the same store picks up exactly
//! where it stopped.

use crate::budget::{converged, rel_halfwidth, BudgetPolicy, CellBudget, StopReason};
use crate::cancel::CancelToken;
use crate::key::{canonical_spec_json, job_key};
use crate::store::ResultStore;
use rackfabric_obs::{Observer, TimeDomain};
use rackfabric_scenario::aggregate::{aggregate_cells, CellSummary};
use rackfabric_scenario::matrix::{Job, Matrix};
use rackfabric_scenario::runner::{JobOutcome, JobRecord, Runner};
use rackfabric_scenario::spec::ScenarioSpec;
use rackfabric_sim::rng::DetRng;
use rackfabric_sim::stats::Histogram;
use std::io;

/// The trace lane the campaign orchestrator records on (resolve / execute /
/// persist spans). Distinct from the runner's job-worker lanes.
const SWEEP_LANE: u64 = 2000;

/// The single seam between the sweep orchestrator and the engine: every
/// store-miss batch of a campaign flows through exactly one
/// [`EngineBoundary::execute_batch`] call, which must execute the jobs and
/// persist each outcome before returning.
///
/// [`DirectBoundary`] is the plain implementation ([`Sweep::run`] uses it);
/// a command layer implements this trait to journal each batch write-ahead
/// without the orchestrator knowing. Implementations must not change the
/// outcomes themselves — routing through a boundary never moves an export
/// byte.
pub trait EngineBoundary {
    /// Executes `jobs` (all store misses) and persists every outcome into
    /// `store`, returning the outcomes in job order.
    fn execute_batch(
        &self,
        jobs: &[Job],
        store: &ResultStore,
        runner: &Runner,
    ) -> io::Result<Vec<JobOutcome>>;
}

/// The pass-through engine boundary: run the batch on the scenario runner
/// and persist each result, exactly as the orchestrator did before the
/// boundary existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectBoundary;

impl EngineBoundary for DirectBoundary {
    fn execute_batch(
        &self,
        jobs: &[Job],
        store: &ResultStore,
        runner: &Runner,
    ) -> io::Result<Vec<JobOutcome>> {
        let results = runner.run_jobs(jobs);
        for (job, outcome) in jobs.iter().zip(&results) {
            store.put(
                &job_key(&job.spec),
                &canonical_spec_json(&job.spec),
                outcome,
            )?;
        }
        Ok(results)
    }
}

/// A resumable sweep campaign over one scenario matrix.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// The declarative sweep (base spec × axes × replicates).
    pub matrix: Matrix,
    /// Convergence-driven replication; `None` keeps the matrix's fixed
    /// replicate count.
    pub budget: Option<BudgetPolicy>,
    /// Stop dispatching after this many fresh executions (cache hits do not
    /// count). `None` runs to completion. This is the interruption /
    /// incremental-progress knob: a partial sweep resumes from the store.
    pub max_new_jobs: Option<usize>,
    /// Campaign-level tracing/metrics (resolve waves, dispatch, persist,
    /// cache hit/miss counters). Observability only: outcomes, store records
    /// and exports are byte-identical with it on or off.
    pub observer: Observer,
    /// Cooperative cancellation: with a token attached, store misses are
    /// dispatched in runner-thread-sized chunks and the token is checked
    /// between chunks. A tripped token stops the campaign exactly like
    /// `max_new_jobs` does — completed jobs persisted, the rest skipped —
    /// so a cancelled campaign resumes (or recovers) to identical bytes.
    pub cancel: Option<CancelToken>,
}

impl Sweep {
    /// A complete (non-budgeted, uninterrupted) sweep over `matrix`.
    pub fn new(matrix: Matrix) -> Sweep {
        Sweep {
            matrix,
            budget: None,
            max_new_jobs: None,
            observer: Observer::off(),
            cancel: None,
        }
    }

    /// Attaches a replication budget, returning the modified sweep.
    pub fn budget(mut self, policy: BudgetPolicy) -> Sweep {
        self.budget = Some(policy);
        self
    }

    /// Caps fresh executions for this invocation, returning the modified
    /// sweep.
    pub fn max_new_jobs(mut self, cap: usize) -> Sweep {
        self.max_new_jobs = Some(cap);
        self
    }

    /// Attaches a campaign observer, returning the modified sweep.
    pub fn observed(mut self, observer: Observer) -> Sweep {
        self.observer = observer;
        self
    }

    /// Attaches a cancellation token, returning the modified sweep.
    pub fn cancel(mut self, token: CancelToken) -> Sweep {
        self.cancel = Some(token);
        self
    }

    /// Drives the campaign: store lookups, incremental dispatch, persist,
    /// aggregate. Deterministic in everything but wall-clock: thread count,
    /// prior store contents and interruption points never change the final
    /// (complete) exports.
    pub fn run(&self, store: &ResultStore, runner: &Runner) -> io::Result<SweepOutcome> {
        self.run_via(store, runner, &DirectBoundary)
    }

    /// [`Sweep::run`] with an explicit [`EngineBoundary`]: every store-miss
    /// batch is executed and persisted through `boundary` instead of the
    /// direct runner+store path. The command layer uses this to journal
    /// fresh executions write-ahead; outcomes and exports are byte-identical
    /// either way.
    pub fn run_via(
        &self,
        store: &ResultStore,
        runner: &Runner,
        boundary: &dyn EngineBoundary,
    ) -> io::Result<SweepOutcome> {
        if let Some(sink) = self.observer.trace() {
            sink.name_lane(SWEEP_LANE, "sweep");
        }
        let mut dispatcher = Dispatcher {
            store,
            runner,
            boundary,
            executed: 0,
            cached: 0,
            skipped: 0,
            max_new_jobs: self.max_new_jobs,
            interrupted: false,
            observer: &self.observer,
            cancel: self.cancel.as_ref(),
        };
        let (records, cell_budgets) = match &self.budget {
            None => (self.run_fixed(&mut dispatcher)?, Vec::new()),
            Some(policy) => self.run_budgeted(policy, &mut dispatcher)?,
        };
        let cells = aggregate_cells(&records);
        let distributions = merge_distributions(&records);
        Ok(SweepOutcome {
            cells,
            distributions,
            records,
            executed: dispatcher.executed,
            cached: dispatcher.cached,
            skipped: dispatcher.skipped,
            interrupted: dispatcher.interrupted,
            cell_budgets,
        })
    }

    /// Fixed-replicate path: the job list is exactly the matrix expansion
    /// (same seeds as [`Runner::run`]), resolved through the store.
    fn run_fixed(&self, dispatcher: &mut Dispatcher<'_>) -> io::Result<Vec<JobRecord>> {
        let jobs = self.matrix.expand();
        let outcomes = dispatcher.resolve(&jobs)?;
        Ok(jobs
            .into_iter()
            .zip(outcomes)
            .filter_map(|(job, outcome)| outcome.map(|outcome| JobRecord { job, outcome }))
            .collect())
    }

    /// Budgeted path: replicates per cell grow round by round until the p99
    /// CI converges or a budget runs out. Decisions read only deterministic
    /// results in cell order, so the expansion itself is deterministic.
    fn run_budgeted(
        &self,
        policy: &BudgetPolicy,
        dispatcher: &mut Dispatcher<'_>,
    ) -> io::Result<(Vec<JobRecord>, Vec<CellBudget>)> {
        // One representative job per cell carries the resolved spec+labels.
        let mut cell_reps: Vec<Job> = self.matrix.expand();
        cell_reps.retain(|job| job.replicate == 0);

        let min = policy.min_replicates.max(2);
        let max = policy.max_replicates.max(min);
        let mut per_cell: Vec<Vec<JobRecord>> = vec![Vec::new(); cell_reps.len()];
        let mut stops: Vec<Option<StopReason>> = vec![None; cell_reps.len()];
        let mut scheduled_total: u64 = 0;

        // Seed rounds: every cell gets the policy minimum up front.
        let mut wave: Vec<(usize, Job)> = Vec::new();
        for (c, rep) in cell_reps.iter().enumerate() {
            for r in 0..min {
                if let Some(cap) = policy.max_total_jobs {
                    if scheduled_total >= cap {
                        stops[c].get_or_insert(StopReason::JobBudget);
                        break;
                    }
                }
                scheduled_total += 1;
                wave.push((c, self.replicate_job(rep, r)));
            }
        }

        loop {
            if wave.is_empty() {
                break;
            }
            let jobs: Vec<Job> = wave.iter().map(|(_, job)| job.clone()).collect();
            let outcomes = dispatcher.resolve(&jobs)?;
            let mut incomplete = false;
            for ((cell, job), outcome) in wave.drain(..).zip(outcomes) {
                match outcome {
                    Some(outcome) => per_cell[cell].push(JobRecord { job, outcome }),
                    None => incomplete = true,
                }
            }
            if incomplete {
                // Interrupted: expansion decisions need the missing results,
                // so stop here; the next invocation resumes deterministically.
                break;
            }

            // Evaluate every undecided cell and schedule the next round.
            for (c, rep) in cell_reps.iter().enumerate() {
                if stops[c].is_some() {
                    continue;
                }
                let p99s = replicate_p99s(&per_cell[c]);
                let n = per_cell[c].len();
                if converged(&p99s, policy) {
                    stops[c] = Some(StopReason::Converged);
                } else if n >= min
                    && (p99s.len() < 2 || rel_halfwidth(&p99s, policy.confidence_z).is_none())
                {
                    // Failures or zero-latency cells can never converge;
                    // spending more replicates on them is pure waste.
                    stops[c] = Some(StopReason::Degenerate);
                } else if n >= max {
                    stops[c] = Some(StopReason::ReplicateCap);
                } else if policy
                    .max_total_jobs
                    .is_some_and(|cap| scheduled_total >= cap)
                {
                    stops[c] = Some(StopReason::JobBudget);
                } else {
                    scheduled_total += 1;
                    wave.push((c, self.replicate_job(rep, n)));
                }
            }
            self.observer
                .count("sweep.replicates_grown", TimeDomain::Sim, wave.len() as u64);
        }

        // Flatten to (cell, replicate) order with dense job indices so the
        // aggregator sees contiguous cells.
        let mut records = Vec::new();
        let mut budgets = Vec::new();
        for (c, members) in per_cell.into_iter().enumerate() {
            let p99s = replicate_p99s(&members);
            budgets.push(CellBudget {
                cell: c,
                replicates: members.len(),
                rel_halfwidth: rel_halfwidth(&p99s, policy.confidence_z).unwrap_or(f64::INFINITY),
                // An undecided cell here means the fresh-execution cap cut
                // the campaign short, not that a job budget ran out.
                stop: stops[c].unwrap_or(StopReason::Interrupted),
            });
            for mut record in members {
                record.job.index = records.len();
                records.push(record);
            }
        }
        Ok((records, budgets))
    }

    /// Builds replicate `r` of a cell: the representative's resolved spec
    /// with a content-keyed seed installed.
    fn replicate_job(&self, rep: &Job, r: usize) -> Job {
        let mut job = rep.clone();
        job.replicate = r;
        job.spec.seed = replicate_seed(self.matrix.master_seed, &rep.spec, r);
        job
    }
}

/// The content-keyed replicate seed schedule of budgeted sweeps: a pure
/// function of the master seed, the cell's canonical spec (minus its seed)
/// and the replicate number. Independent of cell indices, axis order and
/// the existence of other cells.
pub fn replicate_seed(master_seed: u64, cell_spec: &ScenarioSpec, replicate: usize) -> u64 {
    let mut probe = cell_spec.clone();
    probe.seed = 0;
    let cell_hash = job_key(&probe).0;
    let lane = (cell_hash as u64) ^ ((cell_hash >> 64) as u64);
    DetRng::new(master_seed ^ lane ^ (replicate as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .next_u64()
}

/// The p99 packet latencies of a cell's completed replicates.
fn replicate_p99s(members: &[JobRecord]) -> Vec<f64> {
    members
        .iter()
        .filter_map(|record| match &record.outcome {
            JobOutcome::Completed(result) => Some(result.summary.packet_latency.p99),
            JobOutcome::Failed(_) => None,
        })
        .collect()
}

/// Everything one orchestrated sweep produced.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-job records (cached + freshly executed), in (cell, replicate)
    /// order. Jobs skipped by an interruption are absent.
    pub records: Vec<JobRecord>,
    /// Per-cell aggregates over the records.
    pub cells: Vec<CellSummary>,
    /// Per-cell merged latency histograms (for CDF plots).
    pub distributions: Vec<CellDistributions>,
    /// Jobs freshly executed by this invocation.
    pub executed: usize,
    /// Jobs answered from the store.
    pub cached: usize,
    /// Jobs left undispatched because `max_new_jobs` ran out.
    pub skipped: usize,
    /// True when `max_new_jobs` cut the campaign short.
    pub interrupted: bool,
    /// Per-cell replication verdicts (budgeted sweeps only).
    pub cell_budgets: Vec<CellBudget>,
}

impl SweepOutcome {
    /// Total jobs the campaign touched this invocation.
    pub fn total_jobs(&self) -> usize {
        self.executed + self.cached + self.skipped
    }
}

/// Per-cell merged latency distributions.
#[derive(Debug, Clone)]
pub struct CellDistributions {
    /// Cell index.
    pub cell: usize,
    /// `(axis name, value label)` pairs identifying the cell.
    pub labels: Vec<(String, String)>,
    /// End-to-end packet latency over all replicates (picoseconds).
    pub packet_latency: Histogram,
    /// Queueing delay over all replicates (picoseconds).
    pub queueing_latency: Histogram,
}

fn merge_distributions(records: &[JobRecord]) -> Vec<CellDistributions> {
    let mut out: Vec<CellDistributions> = Vec::new();
    for record in records {
        let cell = record.job.cell;
        if out.last().map(|d| d.cell) != Some(cell) {
            out.push(CellDistributions {
                cell,
                labels: record.job.labels.clone(),
                packet_latency: Histogram::new(),
                queueing_latency: Histogram::new(),
            });
        }
        if let JobOutcome::Completed(result) = &record.outcome {
            let dist = out.last_mut().expect("pushed above");
            dist.packet_latency.merge(&result.packet_latency);
            dist.queueing_latency.merge(&result.queueing_latency);
        }
    }
    out
}

/// The store-first incremental dispatcher shared by both sweep modes.
struct Dispatcher<'a> {
    store: &'a ResultStore,
    runner: &'a Runner,
    boundary: &'a dyn EngineBoundary,
    executed: usize,
    cached: usize,
    skipped: usize,
    max_new_jobs: Option<usize>,
    interrupted: bool,
    observer: &'a Observer,
    cancel: Option<&'a CancelToken>,
}

impl Dispatcher<'_> {
    /// Resolves one batch of jobs: store hits are returned directly, misses
    /// run on the scenario runner (respecting the fresh-execution cap) and
    /// are persisted before returning. `None` marks a job skipped by an
    /// interruption.
    fn resolve(&mut self, jobs: &[Job]) -> io::Result<Vec<Option<JobOutcome>>> {
        let mut resolve_span = self.observer.span(SWEEP_LANE, "resolve", "sweep");
        resolve_span.arg_u64("jobs", jobs.len() as u64);
        let mut outcomes: Vec<Option<JobOutcome>> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<usize> = Vec::new();
        {
            let _lookup_span = self.observer.span(SWEEP_LANE, "store lookup", "sweep");
            for (i, job) in jobs.iter().enumerate() {
                match self.store.get(&job_key(&job.spec)) {
                    Some(outcome) => {
                        self.cached += 1;
                        outcomes.push(Some(outcome));
                    }
                    None => {
                        outcomes.push(None);
                        pending.push(i);
                    }
                }
            }
        }
        let warm = jobs.len() - pending.len();
        self.observer
            .count("sweep.cache_hits", TimeDomain::Sim, warm as u64);
        self.observer
            .count("sweep.cache_misses", TimeDomain::Sim, pending.len() as u64);
        resolve_span.arg_u64("warm", warm as u64);
        resolve_span.arg_u64("cold", pending.len() as u64);
        if let Some(cap) = self.max_new_jobs {
            let room = cap.saturating_sub(self.executed);
            if pending.len() > room {
                self.interrupted = true;
                self.skipped += pending.len() - room;
                pending.truncate(room);
            }
        }
        if pending.is_empty() {
            return Ok(outcomes);
        }
        // Without a cancel token the whole miss set is one batch. With one,
        // dispatch in runner-thread-sized chunks and check the token between
        // chunks: jobs already handed to the engine complete and persist, so
        // cancellation always leaves a clean store (and journal) prefix.
        let chunk = match self.cancel {
            Some(_) => self.runner.threads().max(1),
            None => pending.len(),
        };
        let mut offset = 0;
        while offset < pending.len() {
            if let Some(token) = self.cancel {
                if token.checkpoint() {
                    self.interrupted = true;
                    self.skipped += pending.len() - offset;
                    break;
                }
            }
            let slice = &pending[offset..(offset + chunk).min(pending.len())];
            let batch: Vec<Job> = slice.iter().map(|&i| jobs[i].clone()).collect();
            // The boundary both executes and persists — one span covers the
            // whole mutation so traces stay meaningful whichever boundary
            // runs.
            let results = {
                let mut span = self.observer.span(SWEEP_LANE, "execute", "sweep");
                span.arg_u64("jobs", batch.len() as u64);
                self.boundary
                    .execute_batch(&batch, self.store, self.runner)?
            };
            for (&i, outcome) in slice.iter().zip(results) {
                self.executed += 1;
                outcomes[i] = Some(outcome);
            }
            offset += slice.len();
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_scenario::matrix::AxisValue;
    use rackfabric_scenario::spec::WorkloadSpec;
    use rackfabric_sim::time::SimTime;
    use rackfabric_sim::units::Bytes;
    use rackfabric_topo::spec::TopologySpec;
    use std::path::PathBuf;

    fn tmp_store(tag: &str) -> (PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!(
            "rackfabric-sweep-campaign-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (dir.clone(), ResultStore::open(&dir).unwrap())
    }

    fn small_matrix() -> Matrix {
        let base = ScenarioSpec::new(
            "campaign-unit",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(1)),
        )
        .horizon(SimTime::from_millis(20));
        Matrix::new(base)
            .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
            .replicates(2)
            .master_seed(3)
    }

    #[test]
    fn cold_run_executes_all_and_matches_the_plain_runner() {
        let (dir, store) = tmp_store("cold");
        let runner = Runner::single_threaded();
        let sweep = Sweep::new(small_matrix());
        let outcome = sweep.run(&store, &runner).unwrap();
        assert_eq!(outcome.executed, 4);
        assert_eq!(outcome.cached, 0);
        assert!(!outcome.interrupted);
        // Same seeds, same jobs as the plain scenario runner.
        let plain = runner.run(&small_matrix());
        let sweep_csv = rackfabric_scenario::export::cells_to_csv(&outcome.cells);
        assert_eq!(sweep_csv, plain.to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_run_executes_nothing_and_reproduces_bytes() {
        let (dir, store) = tmp_store("warm");
        let runner = Runner::single_threaded();
        let sweep = Sweep::new(small_matrix());
        let first = sweep.run(&store, &runner).unwrap();
        let second = sweep.run(&store, &runner).unwrap();
        assert_eq!(second.executed, 0, "warm store must answer every job");
        assert_eq!(second.cached, 4);
        assert_eq!(
            rackfabric_scenario::export::cells_to_csv(&first.cells),
            rackfabric_scenario::export::cells_to_csv(&second.cells)
        );
        assert_eq!(
            rackfabric_scenario::export::cells_to_json(&first.cells),
            rackfabric_scenario::export::cells_to_json(&second.cells)
        );
        assert_eq!(
            rackfabric_scenario::export::jobs_to_csv(&first.records),
            rackfabric_scenario::export::jobs_to_csv(&second.records)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interruption_resumes_to_identical_output() {
        let (dir_a, store_a) = tmp_store("interrupt-a");
        let (dir_b, store_b) = tmp_store("interrupt-b");
        let runner = Runner::single_threaded();

        // Reference: one uninterrupted run.
        let full = Sweep::new(small_matrix()).run(&store_a, &runner).unwrap();

        // Interrupted: two executions, then resume.
        let partial = Sweep::new(small_matrix())
            .max_new_jobs(2)
            .run(&store_b, &runner)
            .unwrap();
        assert!(partial.interrupted);
        assert_eq!(partial.executed, 2);
        assert_eq!(partial.skipped, 2);
        let resumed = Sweep::new(small_matrix()).run(&store_b, &runner).unwrap();
        assert_eq!(resumed.executed, 2, "resume runs only the remainder");
        assert_eq!(resumed.cached, 2);
        assert_eq!(
            rackfabric_scenario::export::cells_to_csv(&full.cells),
            rackfabric_scenario::export::cells_to_csv(&resumed.cells)
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn cancellation_interrupts_cleanly_and_resumes_to_identical_output() {
        let (dir_a, store_a) = tmp_store("cancel-a");
        let (dir_b, store_b) = tmp_store("cancel-b");
        let runner = Runner::single_threaded();

        // Reference: one uninterrupted run.
        let full = Sweep::new(small_matrix()).run(&store_a, &runner).unwrap();

        // A fuse token cancels deterministically after two dispatch chunks
        // (chunk = 1 job on a single-threaded runner).
        let token = CancelToken::after_checks(2);
        let partial = Sweep::new(small_matrix())
            .cancel(token.clone())
            .run(&store_b, &runner)
            .unwrap();
        assert!(partial.interrupted);
        assert!(token.is_cancelled());
        assert_eq!(partial.executed, 2, "jobs before the trip complete");
        assert_eq!(partial.skipped, 2, "jobs after it are skipped");

        // A resume (no token) runs only the remainder and reproduces the
        // uninterrupted campaign byte for byte.
        let resumed = Sweep::new(small_matrix()).run(&store_b, &runner).unwrap();
        assert_eq!(resumed.executed, 2);
        assert_eq!(resumed.cached, 2);
        assert_eq!(
            rackfabric_scenario::export::cells_to_csv(&full.cells),
            rackfabric_scenario::export::cells_to_csv(&resumed.cells)
        );

        // An already-tripped token stops the campaign before any dispatch.
        let (dir_c, store_c) = tmp_store("cancel-c");
        let tripped = CancelToken::new();
        tripped.cancel();
        let none = Sweep::new(small_matrix())
            .cancel(tripped)
            .run(&store_c, &runner)
            .unwrap();
        assert_eq!(none.executed, 0);
        assert!(none.interrupted);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
        let _ = std::fs::remove_dir_all(&dir_c);
    }

    #[test]
    fn budgeted_sweep_converges_and_reports_budgets() {
        let (dir, store) = tmp_store("budget");
        let runner = Runner::single_threaded();
        let policy = BudgetPolicy {
            target_rel_halfwidth: 0.5,
            min_replicates: 2,
            max_replicates: 6,
            ..BudgetPolicy::default()
        };
        let sweep = Sweep::new(small_matrix()).budget(policy);
        let outcome = sweep.run(&store, &runner).unwrap();
        assert_eq!(outcome.cell_budgets.len(), 2);
        for budget in &outcome.cell_budgets {
            assert!(budget.replicates >= 2 && budget.replicates <= 6);
        }
        // Budgeted runs are themselves resumable.
        let again = sweep.run(&store, &runner).unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.cell_budgets, outcome.cell_budgets);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_budgeted_cells_report_interrupted_not_job_budget() {
        let (dir, store) = tmp_store("budget-interrupt");
        let runner = Runner::single_threaded();
        let sweep = Sweep::new(small_matrix())
            .budget(BudgetPolicy {
                min_replicates: 2,
                max_replicates: 4,
                ..BudgetPolicy::default()
            })
            .max_new_jobs(1);
        let outcome = sweep.run(&store, &runner).unwrap();
        assert!(outcome.interrupted);
        // No job budget was configured: undecided cells must say so.
        assert!(outcome
            .cell_budgets
            .iter()
            .all(|b| b.stop == StopReason::Interrupted));
        // The report renders even though some cells have no results yet.
        let files = crate::emit::render_files("budget-interrupt", &outcome);
        let report = &files.iter().find(|(n, _)| n == "report.md").unwrap().1;
        assert!(report.contains("interrupted"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
