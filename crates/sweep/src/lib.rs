//! # rackfabric-sweep
//!
//! A **resumable, budget-aware sweep orchestrator** over the scenario
//! engine: the layer that turns one-shot matrix runs into long-running
//! experiment campaigns that survive interruption, skip work they have
//! already done, replicate seeds only until tail percentiles are
//! trustworthy, and render their own reports.
//!
//! * [`key`] — content-addressed [`JobKey`]s: a 128-bit hash of the
//!   canonical JSON of a fully resolved [`ScenarioSpec`], excluding every
//!   proven result-neutral knob (scheduler, shard count, names).
//! * [`store`] — the on-disk [`ResultStore`]: one atomic JSON record per
//!   executed job, keyed by hash, holding exact (wall-clock-free)
//!   simulation output; [`ResultStore::gc`](store::ResultStore::gc)
//!   compacts away records orphaned by campaign edits.
//! * [`budget`] — [`BudgetPolicy`]: replicate each cell until the p99
//!   confidence interval converges below a target, instead of a fixed seed
//!   count.
//! * [`campaign`] — the [`Sweep`] orchestrator: store-first resolution,
//!   incremental dispatch through [`Runner::run_jobs`],
//!   deterministic budgeted expansion, interruption via `max_new_jobs`.
//! * [`report`] / [`emit`] — dependency-free SVG line/CDF plots and a
//!   markdown campaign summary, all byte-deterministic.
//!
//! ## Example
//!
//! ```
//! use rackfabric::prelude::TopologySpec;
//! use rackfabric_scenario::prelude::*;
//! use rackfabric_sim::prelude::*;
//! use rackfabric_sweep::prelude::*;
//!
//! let base = ScenarioSpec::new(
//!     "quickstart",
//!     TopologySpec::grid(2, 2, 2),
//!     WorkloadSpec::shuffle(Bytes::from_kib(1)),
//! )
//! .horizon(SimTime::from_millis(20));
//! let matrix = Matrix::new(base)
//!     .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
//!     .replicates(2);
//!
//! let dir = std::env::temp_dir().join("rackfabric-sweep-doc");
//! let store = ResultStore::open(&dir).unwrap();
//! let sweep = Sweep::new(matrix);
//! let first = sweep.run(&store, &Runner::single_threaded()).unwrap();
//! let second = sweep.run(&store, &Runner::single_threaded()).unwrap();
//! assert_eq!(second.executed, 0, "warm store: every job is a cache hit");
//! assert_eq!(first.cells.len(), second.cells.len());
//! std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! [`ScenarioSpec`]: rackfabric_scenario::spec::ScenarioSpec
//! [`Runner::run_jobs`]: rackfabric_scenario::runner::Runner::run_jobs
//! [`JobKey`]: key::JobKey
//! [`ResultStore`]: store::ResultStore
//! [`BudgetPolicy`]: budget::BudgetPolicy
//! [`Sweep`]: campaign::Sweep

pub mod budget;
pub mod campaign;
pub mod cancel;
pub mod emit;
pub mod key;
pub mod lock;
pub mod report;
pub mod store;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::budget::{BudgetPolicy, CellBudget, StopReason};
    pub use crate::campaign::{
        CellDistributions, DirectBoundary, EngineBoundary, Sweep, SweepOutcome,
    };
    pub use crate::cancel::CancelToken;
    pub use crate::emit::{render_files, write_report};
    pub use crate::key::{canonical_spec_json, job_key, JobKey};
    pub use crate::lock::StoreLock;
    pub use crate::report::{cdf_plot, line_plot, PlotSeries};
    pub use crate::store::{outcome_from_json, outcome_to_json, GcStats, ResultStore, StoreStats};
}

pub use budget::{BudgetPolicy, CellBudget, StopReason};
pub use campaign::{CellDistributions, DirectBoundary, EngineBoundary, Sweep, SweepOutcome};
pub use cancel::CancelToken;
pub use key::{canonical_spec_json, job_key, JobKey};
pub use lock::StoreLock;
pub use store::{outcome_from_json, outcome_to_json, GcStats, ResultStore, StoreStats};
