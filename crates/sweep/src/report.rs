//! Dependency-free SVG plots and markdown campaign summaries.
//!
//! Every byte emitted here is a pure function of deterministic sweep output
//! (no timestamps, no wall-clock, no float formatting that varies by
//! locale), so re-rendering a report from a warm store reproduces it
//! byte-for-byte — the property the CI resume gate `cmp`s.

use rackfabric_sim::stats::Histogram;

/// One named polyline of a line plot.
#[derive(Debug, Clone)]
pub struct PlotSeries {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples, rendered in the given order.
    pub points: Vec<(f64, f64)>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 160.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 50.0;

/// A fixed, colour-blind-friendly palette; series cycle through it.
const PALETTE: [&str; 8] = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
];

/// Formats an axis/legend number compactly and deterministically.
fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(0.01..10_000.0).contains(&a) {
        return format!("{v:.2e}");
    }
    let s = format!("{v:.2}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

fn fmt_coord(v: f64) -> String {
    format!("{v:.2}")
}

struct Scale {
    min: f64,
    max: f64,
    pixel_min: f64,
    pixel_max: f64,
}

impl Scale {
    fn new(min: f64, max: f64, pixel_min: f64, pixel_max: f64) -> Scale {
        let (min, max) = if (max - min).abs() < f64::EPSILON {
            // A flat axis still needs a non-zero span to map through.
            (min - 0.5, max + 0.5)
        } else {
            (min, max)
        };
        Scale {
            min,
            max,
            pixel_min,
            pixel_max,
        }
    }

    fn map(&self, v: f64) -> f64 {
        let t = (v - self.min) / (self.max - self.min);
        self.pixel_min + t * (self.pixel_max - self.pixel_min)
    }

    fn ticks(&self, count: usize) -> Vec<f64> {
        (0..=count)
            .map(|i| self.min + (self.max - self.min) * i as f64 / count as f64)
            .collect()
    }
}

fn svg_header(title: &str, out: &mut String) {
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\">\n"
    ));
    out.push_str(&format!(
        "  <rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>\n"
    ));
    out.push_str(&format!(
        "  <text x=\"{}\" y=\"24\" font-size=\"15\" text-anchor=\"middle\">{}</text>\n",
        (MARGIN_LEFT + (WIDTH - MARGIN_RIGHT)) / 2.0,
        xml_escape(title)
    ));
}

fn axes(x: &Scale, y: &Scale, x_label: &str, y_label: &str, out: &mut String) {
    let left = MARGIN_LEFT;
    let right = WIDTH - MARGIN_RIGHT;
    let top = MARGIN_TOP;
    let bottom = HEIGHT - MARGIN_BOTTOM;
    out.push_str(&format!(
        "  <line x1=\"{left}\" y1=\"{bottom}\" x2=\"{right}\" y2=\"{bottom}\" stroke=\"#333\"/>\n\
         \x20 <line x1=\"{left}\" y1=\"{top}\" x2=\"{left}\" y2=\"{bottom}\" stroke=\"#333\"/>\n"
    ));
    for tick in x.ticks(5) {
        let px = fmt_coord(x.map(tick));
        out.push_str(&format!(
            "  <line x1=\"{px}\" y1=\"{bottom}\" x2=\"{px}\" y2=\"{}\" stroke=\"#333\"/>\n",
            bottom + 4.0
        ));
        out.push_str(&format!(
            "  <text x=\"{px}\" y=\"{}\" font-size=\"11\" text-anchor=\"middle\">{}</text>\n",
            bottom + 17.0,
            fmt_num(tick)
        ));
    }
    for tick in y.ticks(5) {
        let py = fmt_coord(y.map(tick));
        out.push_str(&format!(
            "  <line x1=\"{}\" y1=\"{py}\" x2=\"{left}\" y2=\"{py}\" stroke=\"#333\"/>\n",
            left - 4.0
        ));
        out.push_str(&format!(
            "  <text x=\"{}\" y=\"{py}\" font-size=\"11\" text-anchor=\"end\" \
             dominant-baseline=\"middle\">{}</text>\n",
            left - 8.0,
            fmt_num(tick)
        ));
    }
    out.push_str(&format!(
        "  <text x=\"{}\" y=\"{}\" font-size=\"12\" text-anchor=\"middle\">{}</text>\n",
        (left + right) / 2.0,
        HEIGHT - 12.0,
        xml_escape(x_label)
    ));
    out.push_str(&format!(
        "  <text x=\"16\" y=\"{}\" font-size=\"12\" text-anchor=\"middle\" \
         transform=\"rotate(-90 16 {})\">{}</text>\n",
        (top + bottom) / 2.0,
        (top + bottom) / 2.0,
        xml_escape(y_label)
    ));
}

fn legend(labels: &[&str], out: &mut String) {
    let x = WIDTH - MARGIN_RIGHT + 12.0;
    for (i, label) in labels.iter().enumerate() {
        let y = MARGIN_TOP + 14.0 * i as f64;
        let color = PALETTE[i % PALETTE.len()];
        out.push_str(&format!(
            "  <line x1=\"{x}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"{color}\" \
             stroke-width=\"2\"/>\n",
            x + 16.0
        ));
        out.push_str(&format!(
            "  <text x=\"{}\" y=\"{}\" font-size=\"10\" dominant-baseline=\"middle\">{}</text>\n",
            x + 20.0,
            y,
            xml_escape(label)
        ));
    }
}

fn polyline(series: &PlotSeries, color: &str, x: &Scale, y: &Scale, out: &mut String) {
    if series.points.is_empty() {
        return;
    }
    let coords: Vec<String> = series
        .points
        .iter()
        .map(|&(px, py)| format!("{},{}", fmt_coord(x.map(px)), fmt_coord(y.map(py))))
        .collect();
    out.push_str(&format!(
        "  <polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" points=\"{}\"/>\n",
        coords.join(" ")
    ));
    for &(px, py) in &series.points {
        out.push_str(&format!(
            "  <circle cx=\"{}\" cy=\"{}\" r=\"2.5\" fill=\"{color}\"/>\n",
            fmt_coord(x.map(px)),
            fmt_coord(y.map(py))
        ));
    }
}

/// Escapes text content for SVG/XML.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a self-contained line plot (one polyline per series, shared
/// axes, legend on the right). Returns the complete SVG document.
pub fn line_plot(title: &str, x_label: &str, y_label: &str, series: &[PlotSeries]) -> String {
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    let x_min = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_max = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let (x_min, x_max, y_max) = if points.is_empty() {
        (0.0, 1.0, 1.0)
    } else {
        (x_min, x_max, y_max * 1.05)
    };
    let x = Scale::new(x_min, x_max, MARGIN_LEFT, WIDTH - MARGIN_RIGHT);
    let y = Scale::new(0.0, y_max, HEIGHT - MARGIN_BOTTOM, MARGIN_TOP);

    let mut out = String::new();
    svg_header(title, &mut out);
    axes(&x, &y, x_label, y_label, &mut out);
    for (i, s) in series.iter().enumerate() {
        polyline(s, PALETTE[i % PALETTE.len()], &x, &y, &mut out);
    }
    let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
    legend(&labels, &mut out);
    out.push_str("</svg>\n");
    out
}

/// Renders latency CDFs (one curve per labelled histogram) with the x axis
/// in log10 microseconds. Empty histograms are skipped.
pub fn cdf_plot(title: &str, series: &[(String, &Histogram)]) -> String {
    let curves: Vec<PlotSeries> = series
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|(label, h)| {
            let total = h.count() as f64;
            let mut seen = 0u64;
            let points = h
                .sparse_counts()
                .into_iter()
                .map(|(value_ps, count)| {
                    seen += count;
                    let us = (value_ps as f64 / 1e6).max(1e-9);
                    (us.log10(), seen as f64 / total)
                })
                .collect();
            PlotSeries {
                label: label.clone(),
                points,
            }
        })
        .collect();
    line_plot(title, "latency (log10 us)", "fraction of packets", &curves)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_plot_is_valid_and_deterministic() {
        let series = vec![
            PlotSeries {
                label: "baseline".into(),
                points: vec![(1.0, 10.0), (2.0, 20.0), (4.0, 15.0)],
            },
            PlotSeries {
                label: "adaptive".into(),
                points: vec![(1.0, 8.0), (2.0, 12.0), (4.0, 11.0)],
            },
        ];
        let a = line_plot("p99 vs load", "load", "p99 (us)", &series);
        let b = line_plot("p99 vs load", "load", "p99 (us)", &series);
        assert_eq!(a, b);
        assert!(a.starts_with("<svg "));
        assert!(a.trim_end().ends_with("</svg>"));
        assert_eq!(a.matches("<polyline").count(), 2);
        assert!(a.contains("baseline"));
        assert!(a.contains("p99 vs load"));
    }

    #[test]
    fn degenerate_plots_still_render() {
        let flat = vec![PlotSeries {
            label: "flat".into(),
            points: vec![(1.0, 5.0), (2.0, 5.0)],
        }];
        let svg = line_plot("flat", "x", "y", &flat);
        assert!(svg.contains("<polyline"));
        let empty = line_plot("empty", "x", "y", &[]);
        assert!(empty.contains("</svg>"));
    }

    #[test]
    fn cdf_plot_covers_the_distribution() {
        let mut h = Histogram::new();
        for v in [1_000_000u64, 2_000_000, 4_000_000, 8_000_000] {
            h.record(v);
        }
        let svg = cdf_plot("latency cdf", &[("cell".into(), &h)]);
        assert!(svg.contains("<polyline"));
        // Empty histograms are skipped, not rendered as broken curves.
        let empty = Histogram::new();
        let svg = cdf_plot("latency cdf", &[("none".into(), &empty)]);
        assert_eq!(svg.matches("<polyline").count(), 0);
    }

    #[test]
    fn number_formatting_is_compact() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(2.5), "2.5");
        assert_eq!(fmt_num(1500.0), "1500");
        assert_eq!(fmt_num(123456.0), "1.23e5");
        assert_eq!(fmt_num(0.001), "1.00e-3");
    }
}
