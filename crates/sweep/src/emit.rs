//! Rendering a [`SweepOutcome`] into its on-disk campaign report.
//!
//! One call produces the complete, deterministic file set — aggregate
//! CSV/JSON, per-job CSV, per-axis p99 line plots, a latency CDF and a
//! markdown summary — as `(file name, contents)` pairs, so callers (the
//! `sweep` CLI, tests) can write or diff them without touching the
//! filesystem here.

use crate::budget::BudgetPolicy;
use crate::campaign::SweepOutcome;
use crate::report::{cdf_plot, line_plot, PlotSeries};
use rackfabric_scenario::export;
use std::io;
use std::path::Path;

/// How many CDF curves a report renders before cutting off (and saying so).
const CDF_SERIES_CAP: usize = 8;

/// Renders the complete report file set for a campaign named `name`.
/// Deterministic: the same outcome always renders the same bytes.
pub fn render_files(name: &str, outcome: &SweepOutcome) -> Vec<(String, String)> {
    let mut files = vec![
        (
            "cells.csv".to_string(),
            export::cells_to_csv(&outcome.cells),
        ),
        (
            "cells.json".to_string(),
            export::cells_to_json(&outcome.cells),
        ),
        (
            "jobs.csv".to_string(),
            export::jobs_to_csv(&outcome.records),
        ),
    ];
    files.extend(axis_plots(outcome));
    files.push(("latency_cdf.svg".to_string(), cdf_svg(outcome)));
    files.push(("report.md".to_string(), markdown(name, outcome, &files)));
    files
}

/// Writes the rendered file set into `dir` (created if needed).
pub fn write_report(dir: &Path, name: &str, outcome: &SweepOutcome) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (file, contents) in render_files(name, outcome) {
        std::fs::write(dir.join(file), contents)?;
    }
    Ok(())
}

/// Joins a cell's labels into a compact `k=v` identifier.
fn cell_label(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return "cell".to_string();
    }
    labels
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// One p99 line plot per axis: that axis on x, one series per combination
/// of the remaining axes' values.
fn axis_plots(outcome: &SweepOutcome) -> Vec<(String, String)> {
    let Some(first) = outcome.cells.first() else {
        return Vec::new();
    };
    let axis_count = first.labels.len();
    let mut plots = Vec::new();
    for axis in 0..axis_count {
        let axis_name = first.labels[axis].0.clone();
        // Distinct values of this axis (first-seen order) decide the x
        // mapping once: numeric parse when all values are numeric, ordinal
        // otherwise.
        let mut distinct: Vec<&str> = Vec::new();
        for cell in &outcome.cells {
            let v = cell.labels[axis].1.as_str();
            if !distinct.contains(&v) {
                distinct.push(v);
            }
        }
        let all_numeric = distinct.iter().all(|v| v.parse::<f64>().is_ok());
        let axis_position = |value: &str| -> f64 {
            if all_numeric {
                value.parse::<f64>().expect("checked numeric above")
            } else {
                distinct
                    .iter()
                    .position(|&v| v == value)
                    .expect("value came from these cells") as f64
            }
        };
        // Group cells by the other axes' labels, in first-seen order.
        let mut series: Vec<PlotSeries> = Vec::new();
        for cell in &outcome.cells {
            let series_key: Vec<(String, String)> = cell
                .labels
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != axis)
                .map(|(_, kv)| kv.clone())
                .collect();
            let label = cell_label(&series_key);
            let x = axis_position(&cell.labels[axis].1);
            let y = cell.packet_latency.p99 / 1e6; // ps -> us
            match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.points.push((x, y)),
                None => series.push(PlotSeries {
                    label,
                    points: vec![(x, y)],
                }),
            }
        }
        if series.iter().all(|s| s.points.len() < 2) {
            continue; // a single-value axis plots nothing useful
        }
        for s in &mut series {
            s.points
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("axis positions are finite"));
        }
        let svg = line_plot(
            &format!("p99 packet latency vs {axis_name}"),
            &axis_name,
            "p99 latency (us)",
            &series,
        );
        plots.push((format!("p99_vs_{axis_name}.svg"), svg));
    }
    plots
}

fn cdf_svg(outcome: &SweepOutcome) -> String {
    let series: Vec<(String, &rackfabric_sim::stats::Histogram)> = outcome
        .distributions
        .iter()
        .take(CDF_SERIES_CAP)
        .map(|d| (cell_label(&d.labels), &d.packet_latency))
        .collect();
    cdf_plot("end-to-end packet latency CDF", &series)
}

fn markdown(name: &str, outcome: &SweepOutcome, files: &[(String, String)]) -> String {
    // Only campaign *results* belong here: executed-vs-cached splits vary
    // between a cold and a warm invocation of the same campaign, and the CI
    // resume gate diffs the two reports byte for byte. Invocation stats go
    // to the CLI's stderr instead.
    let mut out = String::new();
    out.push_str(&format!("# Sweep campaign: {name}\n\n"));
    out.push_str(&format!("- jobs: **{}**\n", outcome.records.len()));
    out.push_str(&format!("- cells: **{}**\n", outcome.cells.len()));
    if outcome.interrupted {
        out.push_str(
            "- **interrupted**: the fresh-execution cap ran out; re-run against the same \
             store to complete the campaign\n",
        );
    }
    out.push('\n');

    if !outcome.cells.is_empty() {
        out.push_str("## Cells\n\n");
        out.push_str("| cell | runs | failed | p50 (us) | p99 (us) | p999 (us) | events |\n");
        out.push_str("|---|---|---|---|---|---|---|\n");
        for cell in &outcome.cells {
            out.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.3} | {:.3} | {} |\n",
                cell_label(&cell.labels),
                cell.runs,
                cell.failed_runs,
                cell.packet_latency.p50 / 1e6,
                cell.packet_latency.p99 / 1e6,
                cell.packet_latency.p999 / 1e6,
                cell.events_processed
            ));
        }
        out.push('\n');
    }

    if !outcome.cell_budgets.is_empty() {
        out.push_str("## Replication budgets\n\n");
        out.push_str("| cell | replicates | p99 CI rel half-width | stop |\n");
        out.push_str("|---|---|---|---|\n");
        for budget in &outcome.cell_budgets {
            // Join by cell id, not position: cells that produced no records
            // (e.g. under an interruption) are absent from the aggregates.
            let label = outcome
                .cells
                .iter()
                .find(|cell| cell.cell == budget.cell)
                .map(|cell| cell_label(&cell.labels))
                .unwrap_or_else(|| format!("cell {} (no results yet)", budget.cell));
            let width = if budget.rel_halfwidth.is_finite() {
                format!("{:.4}", budget.rel_halfwidth)
            } else {
                "n/a".to_string()
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                label,
                budget.replicates,
                width,
                budget.stop.label()
            ));
        }
        out.push('\n');
    }

    if outcome.distributions.len() > CDF_SERIES_CAP {
        out.push_str(&format!(
            "_CDF plot shows the first {CDF_SERIES_CAP} of {} cells._\n\n",
            outcome.distributions.len()
        ));
    }

    out.push_str("## Files\n\n");
    for (file, _) in files {
        out.push_str(&format!("- [`{file}`]({file})\n"));
    }
    out.push_str("- [`report.md`](report.md)\n");
    out
}

/// Renders the budget policy as a short markdown fragment (used by the CLI
/// to document what a budgeted campaign was asked to do).
pub fn policy_markdown(policy: &BudgetPolicy) -> String {
    let cap = match policy.max_total_jobs {
        Some(cap) => cap.to_string(),
        None => "unbounded".to_string(),
    };
    format!(
        "budget: target p99 CI rel half-width {:.3} at z={:.2}, replicates {}..{}, \
         job cap {cap}\n",
        policy.target_rel_halfwidth,
        policy.confidence_z,
        policy.min_replicates,
        policy.max_replicates
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Sweep;
    use crate::store::ResultStore;
    use rackfabric_scenario::matrix::{AxisValue, Matrix};
    use rackfabric_scenario::runner::Runner;
    use rackfabric_scenario::spec::{ControllerSpec, ScenarioSpec, WorkloadSpec};
    use rackfabric_sim::time::SimTime;
    use rackfabric_sim::units::Bytes;
    use rackfabric_topo::spec::TopologySpec;

    fn outcome() -> SweepOutcome {
        let dir =
            std::env::temp_dir().join(format!("rackfabric-sweep-emit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let base = ScenarioSpec::new(
            "emit-unit",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(1)),
        )
        .horizon(SimTime::from_millis(20));
        let matrix = Matrix::new(base)
            .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
            .axis(
                "controller",
                vec![
                    AxisValue::Controller(ControllerSpec::Baseline),
                    AxisValue::Controller(ControllerSpec::adaptive_default()),
                ],
            )
            .replicates(2);
        let out = Sweep::new(matrix)
            .run(&store, &Runner::single_threaded())
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        out
    }

    #[test]
    fn renders_the_full_deterministic_file_set() {
        let outcome = outcome();
        let a = render_files("emit-unit", &outcome);
        let b = render_files("emit-unit", &outcome);
        assert_eq!(a, b, "report rendering must be deterministic");
        let names: Vec<&str> = a.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"cells.csv"));
        assert!(names.contains(&"cells.json"));
        assert!(names.contains(&"jobs.csv"));
        assert!(names.contains(&"p99_vs_load.svg"));
        assert!(names.contains(&"p99_vs_controller.svg"));
        assert!(names.contains(&"latency_cdf.svg"));
        assert!(names.contains(&"report.md"));
        let report = &a.iter().find(|(n, _)| n == "report.md").unwrap().1;
        assert!(report.contains("# Sweep campaign: emit-unit"));
        assert!(report.contains("4 cells") || report.contains("cells: **4**"));
        let load_plot = &a.iter().find(|(n, _)| n == "p99_vs_load.svg").unwrap().1;
        // One series per controller value.
        assert_eq!(load_plot.matches("<polyline").count(), 2);
    }

    #[test]
    fn non_numeric_axis_values_fall_back_to_ordinals() {
        let outcome = outcome();
        // The controller axis has labels "baseline"/"hybrid": ordinal x.
        let files = render_files("emit-unit", &outcome);
        let plot = &files
            .iter()
            .find(|(n, _)| n == "p99_vs_controller.svg")
            .unwrap()
            .1;
        assert!(plot.contains("<polyline"));
    }
}
