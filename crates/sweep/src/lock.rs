//! Advisory locking for shared store directories.
//!
//! A store directory may be open in several processes at once — the
//! `rackfabricd` daemon serving warm queries while a batch CLI runs a
//! campaign against the same cache. Record reads and writes are already
//! safe under that sharing (atomic temp-file + rename, unique temp names),
//! but two maintenance paths were not:
//!
//! * `stats.json` is a read-modify-write sidecar — two concurrent
//!   [`flush_stats`] calls could interleave and silently drop counts.
//! * [`gc`] and the orphan-temp sweep walk and delete files — two
//!   concurrent passes (or a pass racing a flush) multiply the failure
//!   surface for no benefit.
//!
//! [`StoreLock`] serialises exactly those paths with an OS advisory lock
//! (`flock`-style, via [`std::fs::File::lock`]) on a `lock` file next to
//! `objects/`. Locks are per open file description, so two handles in the
//! *same* process contend just like two processes do — which is also what
//! makes the behaviour testable in-process. Record `get`/`put` never take
//! the lock: the hot path stays lock-free.
//!
//! [`flush_stats`]: crate::store::ResultStore::flush_stats
//! [`gc`]: crate::store::ResultStore::gc

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Name of the lock file inside the store root (never under `objects/`, so
/// it can never be mistaken for a record).
const LOCK_FILE: &str = "lock";

/// A held advisory lock on a store directory; dropping it releases the
/// lock.
#[derive(Debug)]
pub struct StoreLock {
    // Held only for its lock; the guard's drop (close) releases it.
    _file: File,
}

impl StoreLock {
    fn lock_file(root: &Path) -> io::Result<File> {
        OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(root.join(LOCK_FILE))
    }

    /// Takes the store's exclusive maintenance lock, blocking until any
    /// other holder (in this or another process) releases it.
    pub fn exclusive(root: &Path) -> io::Result<StoreLock> {
        let file = Self::lock_file(root)?;
        file.lock()?;
        Ok(StoreLock { _file: file })
    }

    /// Attempts the exclusive lock without blocking: `Ok(None)` when
    /// another holder has it.
    pub fn try_exclusive(root: &Path) -> io::Result<Option<StoreLock>> {
        let file = Self::lock_file(root)?;
        match file.try_lock() {
            Ok(()) => Ok(Some(StoreLock { _file: file })),
            Err(std::fs::TryLockError::WouldBlock) => Ok(None),
            Err(std::fs::TryLockError::Error(e)) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rackfabric-sweep-lock-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn exclusive_lock_excludes_a_second_holder_until_dropped() {
        let root = tmp_root("exclusive");
        let held = StoreLock::exclusive(&root).unwrap();
        // A second handle (same process, separate open file description)
        // must observe the contention, exactly like a second process would.
        assert!(StoreLock::try_exclusive(&root).unwrap().is_none());
        drop(held);
        assert!(StoreLock::try_exclusive(&root).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&root);
    }
}
