//! The content-addressed on-disk result store.
//!
//! One file per executed job, named by the job's [`JobKey`] and sharded into
//! 256 two-hex-character directories (git-object style):
//!
//! ```text
//! <store>/objects/<hh>/<30 hex chars>.json
//! ```
//!
//! Each file records the canonical spec JSON (the hash preimage, kept for
//! debugging and audits) and the job's outcome. Everything stored is
//! deterministic simulation output — wall-clock timings are explicitly *not*
//! persisted, so a cache hit reproduces the exact bytes a fresh run would
//! export. Failed jobs are cached too (panics are deterministic), which is
//! what makes "a warm re-run executes zero jobs" hold unconditionally.
//!
//! Writes go through a temp file + rename, so an interrupted sweep leaves
//! either a complete record or none — never a torn file. Unparseable files
//! are treated as absent and overwritten by the next run.

use crate::key::JobKey;
use crate::lock::StoreLock;
use rackfabric::metrics::RunSummary;
use rackfabric_scenario::runner::{JobOutcome, JobResult};
use rackfabric_sim::json::{self, JsonValue};
use rackfabric_sim::stats::{Histogram, Summary};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version stamp written into every record; bump when the schema changes so
/// stale stores re-execute instead of misparsing. 3: job keys carry the
/// per-edge link class (intra- vs inter-rack), which steers the sharded
/// engine's conservative lookahead. 4: job keys carry the spec-level
/// routing-policy override (minimal / Valiant / adaptive dragonfly routing).
const FORMAT: u64 = 4;

/// In-memory traffic counters of one open store handle (shared by clones).
/// Purely observational: nothing in the records themselves depends on them.
#[derive(Debug, Default)]
struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    gc_kept: AtomicU64,
    gc_removed: AtomicU64,
}

/// A plain snapshot of store traffic counters — either the in-memory
/// counters of this handle or the cumulative totals persisted in the
/// store's `stats.json` sidecar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found no (readable) record.
    pub misses: u64,
    /// Records written.
    pub puts: u64,
    /// Records spared across gc passes.
    pub gc_kept: u64,
    /// Files reclaimed across gc passes.
    pub gc_removed: u64,
}

impl StoreStats {
    /// Hit rate over all lookups (0.0 when the store was never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A handle to one on-disk store directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
    counters: Arc<StoreCounters>,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// Opening also sweeps orphaned `*.tmp.*` files under `objects/` — the
    /// leftovers of writers that crashed between their write and rename.
    /// Only temp files older than [`GC_TEMP_GRACE`] are reclaimed, so a
    /// concurrent writer's in-flight temp file survives.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        Self::open_with_tmp_grace(dir, GC_TEMP_GRACE)
    }

    /// [`ResultStore::open`] with an explicit orphan-temp grace period.
    /// Tests pass [`std::time::Duration::ZERO`] to sweep unconditionally;
    /// production callers should stick with [`ResultStore::open`].
    pub fn open_with_tmp_grace(
        dir: impl Into<PathBuf>,
        grace: std::time::Duration,
    ) -> io::Result<ResultStore> {
        let root = dir.into();
        std::fs::create_dir_all(root.join("objects"))?;
        {
            // Maintenance (file deletion) is serialised across every handle
            // sharing this directory — daemon and CLI included.
            let _lock = StoreLock::exclusive(&root)?;
            sweep_orphan_temps(&root.join("objects"), grace)?;
        }
        Ok(ResultStore {
            root,
            counters: Arc::new(StoreCounters::default()),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, key: &JobKey) -> PathBuf {
        let hex = key.hex();
        self.root
            .join("objects")
            .join(&hex[..2])
            .join(format!("{}.json", &hex[2..]))
    }

    /// Looks up a stored outcome. Returns `None` on a miss or an unreadable/
    /// corrupt record (which the caller then recomputes and overwrites).
    pub fn get(&self, key: &JobKey) -> Option<JobOutcome> {
        let outcome = self.get_inner(key);
        let counter = if outcome.is_some() {
            &self.counters.hits
        } else {
            &self.counters.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        outcome
    }

    fn get_inner(&self, key: &JobKey) -> Option<JobOutcome> {
        let text = std::fs::read_to_string(self.object_path(key)).ok()?;
        let doc = json::parse(&text).ok()?;
        if doc.get("format")?.as_u64()? != FORMAT {
            return None;
        }
        decode_outcome(doc.get("outcome")?)
    }

    /// Persists a job outcome under its key, atomically.
    pub fn put(&self, key: &JobKey, spec_json: &str, outcome: &JobOutcome) -> io::Result<()> {
        let path = self.object_path(key);
        std::fs::create_dir_all(path.parent().expect("object paths have parents"))?;
        let mut out = String::from("{");
        out.push_str(&format!("\"format\": {FORMAT}"));
        out.push_str(&format!(", \"key\": \"{}\"", key.hex()));
        out.push_str(&format!(", \"spec\": {spec_json}"));
        out.push_str(", \"outcome\": ");
        encode_outcome(outcome, &mut out);
        out.push_str("}\n");
        // The tmp name carries the writer's identity: two processes (or
        // threads) racing to persist the same key must not interleave one
        // write/rename pair with another's half-written file.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), seq));
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, &path)?;
        self.counters.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of records in the store (walks the object tree).
    pub fn len(&self) -> usize {
        let Ok(shards) = std::fs::read_dir(self.root.join("objects")) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|shard| std::fs::read_dir(shard.path()).ok())
            .flat_map(|entries| entries.flatten())
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
            .count()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Garbage-collects the store: removes every record whose key is **not**
    /// in `live`, plus stale temp files left by interrupted writers, and
    /// prunes shard directories that end up empty. Campaign edits orphan the
    /// records of replaced axis values; pass the keys of the campaigns that
    /// should survive (e.g. every record a sweep just resolved) to reclaim
    /// the rest.
    ///
    /// Safe next to concurrent writers: temp files younger than
    /// [`GC_TEMP_GRACE`] are spared (a writer may be between its write and
    /// rename), and a file that vanishes mid-pass (the writer's rename won
    /// the race) is skipped rather than failing the collection.
    pub fn gc<'a>(&self, live: impl IntoIterator<Item = &'a JobKey>) -> io::Result<GcStats> {
        // One collector at a time across every process sharing the
        // directory; record reads and writes proceed untouched.
        let _lock = StoreLock::exclusive(&self.root)?;
        let live: std::collections::BTreeSet<u128> = live.into_iter().map(|k| k.0).collect();
        let mut stats = GcStats::default();
        let objects = self.root.join("objects");
        let Ok(shards) = std::fs::read_dir(&objects) else {
            return Ok(stats);
        };
        for shard in shards.flatten() {
            let shard_path = shard.path();
            let Some(prefix) = shard_path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let prefix = prefix.to_string();
            let Ok(entries) = std::fs::read_dir(&shard_path) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                let key = name
                    .strip_suffix(".json")
                    .and_then(|stem| JobKey::from_hex(&format!("{prefix}{stem}")));
                if key.is_some_and(|k| live.contains(&k.0)) {
                    stats.kept += 1;
                    continue;
                }
                if name.contains(".tmp.") && !is_older_than(&path, GC_TEMP_GRACE) {
                    // A concurrent writer may be between write and rename;
                    // leave young temp files for a later pass.
                    continue;
                }
                // Orphaned record, stale temp file, or a file that is not a
                // store object at all: reclaim it.
                match std::fs::remove_file(&path) {
                    Ok(()) => stats.removed += 1,
                    // The writer's rename (or another gc) beat us to it.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
            // Prune the shard directory if the sweep above emptied it.
            if std::fs::read_dir(&shard_path).is_ok_and(|mut d| d.next().is_none()) {
                let _ = std::fs::remove_dir(&shard_path);
            }
        }
        self.counters
            .gc_kept
            .fetch_add(stats.kept as u64, Ordering::Relaxed);
        self.counters
            .gc_removed
            .fetch_add(stats.removed as u64, Ordering::Relaxed);
        Ok(stats)
    }

    /// A snapshot of this handle's in-memory traffic counters (shared with
    /// its clones; independent of the persisted sidecar).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            puts: self.counters.puts.load(Ordering::Relaxed),
            gc_kept: self.counters.gc_kept.load(Ordering::Relaxed),
            gc_removed: self.counters.gc_removed.load(Ordering::Relaxed),
        }
    }

    /// Path of the persisted stats sidecar. Lives next to `objects/`, never
    /// inside it, so report diffs and golden comparisons are unaffected.
    pub fn stats_path(&self) -> PathBuf {
        self.root.join("stats.json")
    }

    /// Reads the cumulative traffic stats persisted by previous
    /// [`ResultStore::flush_stats`] calls (zeros when none exist).
    pub fn read_stats(&self) -> StoreStats {
        let Ok(text) = std::fs::read_to_string(self.stats_path()) else {
            return StoreStats::default();
        };
        let Ok(doc) = json::parse(&text) else {
            return StoreStats::default();
        };
        let field = |name: &str| doc.get(name).and_then(|v| v.as_u64()).unwrap_or(0);
        StoreStats {
            hits: field("hits"),
            misses: field("misses"),
            puts: field("puts"),
            gc_kept: field("gc_kept"),
            gc_removed: field("gc_removed"),
        }
    }

    /// Drains this handle's in-memory counters into the persisted sidecar
    /// (read-modify-write with an atomic rename) and returns the new
    /// cumulative totals. Call once at the end of a run; draining makes a
    /// second flush a no-op instead of double-counting.
    pub fn flush_stats(&self) -> io::Result<StoreStats> {
        // The sidecar is read-modify-write: without the lock, two handles
        // (daemon + CLI on the same directory) could both read the old
        // totals and the later rename would silently drop the earlier
        // flush's counts.
        let _lock = StoreLock::exclusive(&self.root)?;
        let mut total = self.read_stats();
        total.hits += self.counters.hits.swap(0, Ordering::Relaxed);
        total.misses += self.counters.misses.swap(0, Ordering::Relaxed);
        total.puts += self.counters.puts.swap(0, Ordering::Relaxed);
        total.gc_kept += self.counters.gc_kept.swap(0, Ordering::Relaxed);
        total.gc_removed += self.counters.gc_removed.swap(0, Ordering::Relaxed);
        let out = format!(
            "{{\"hits\": {}, \"misses\": {}, \"puts\": {}, \"gc_kept\": {}, \
             \"gc_removed\": {}}}\n",
            total.hits, total.misses, total.puts, total.gc_kept, total.gc_removed
        );
        static STATS_TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.stats_path().with_extension(format!(
            "json.tmp.{}.{}",
            std::process::id(),
            STATS_TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, self.stats_path())?;
        Ok(total)
    }
}

/// Renders a job outcome as **canonical** JSON (sorted keys, no
/// whitespace, one line): the exact encoding stored in a record's
/// `outcome` field, re-serialised canonically. Equal outcomes render to
/// equal bytes, which is what lets a service hand results over a wire and
/// still promise byte-identical answers to the batch path.
pub fn outcome_to_json(outcome: &JobOutcome) -> String {
    let mut raw = String::new();
    encode_outcome(outcome, &mut raw);
    let doc = json::parse(&raw).expect("the outcome encoder emits valid JSON");
    json::canonical(&doc)
}

/// Parses an outcome rendered by [`outcome_to_json`] (or the `outcome`
/// field of a store record). `None` on malformed input.
pub fn outcome_from_json(text: &str) -> Option<JobOutcome> {
    decode_outcome(&json::parse(text).ok()?)
}

/// How old a temp file must be before [`ResultStore::gc`] reclaims it — a
/// younger one may belong to a writer that is still between its write and
/// its rename.
pub const GC_TEMP_GRACE: std::time::Duration = std::time::Duration::from_secs(60);

/// Removes every `*.tmp.*` file under `objects/` older than `grace`:
/// the droppings of writers that died between `write` and `rename`.
/// Before [`ResultStore::open`] swept them, these leaked forever — gc only
/// visits shard directories, and a crash could strand a temp file in a
/// shard that no later campaign touches.
fn sweep_orphan_temps(objects: &Path, grace: std::time::Duration) -> io::Result<usize> {
    let mut removed = 0;
    let Ok(shards) = std::fs::read_dir(objects) else {
        return Ok(removed);
    };
    for shard in shards.flatten() {
        let Ok(entries) = std::fs::read_dir(shard.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.contains(".tmp.") && is_older_than(&path, grace) {
                match std::fs::remove_file(&path) {
                    Ok(()) => removed += 1,
                    // A concurrent opener (or gc pass) beat us to it.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(removed)
}

/// True when the file's mtime is at least `age` in the past (unknown mtimes
/// count as young, so gc errs toward sparing the file).
fn is_older_than(path: &Path, age: std::time::Duration) -> bool {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|modified| modified.elapsed().ok())
        .is_some_and(|elapsed| elapsed >= age)
}

/// What one [`ResultStore::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Records whose keys were in the live set.
    pub kept: usize,
    /// Files removed (orphaned records, temp leftovers, foreign files).
    pub removed: usize,
}

fn encode_outcome(outcome: &JobOutcome, out: &mut String) {
    match outcome {
        JobOutcome::Failed(message) => {
            out.push_str(&format!("{{\"failed\": \"{}\"}}", json::escape(message)));
        }
        JobOutcome::Completed(result) => {
            out.push('{');
            out.push_str(&format!(
                "\"all_flows_complete\": {}, \"events_processed\": {}",
                result.all_flows_complete, result.events_processed
            ));
            out.push_str(", \"packet_latency\": ");
            encode_histogram(&result.packet_latency, out);
            out.push_str(", \"queueing_latency\": ");
            encode_histogram(&result.queueing_latency, out);
            out.push_str(", \"summary\": ");
            encode_summary(&result.summary, out);
            out.push('}');
        }
    }
}

fn decode_outcome(doc: &JsonValue) -> Option<JobOutcome> {
    if let Some(message) = doc.get("failed") {
        return Some(JobOutcome::Failed(message.as_str()?.to_string()));
    }
    let result = JobResult {
        summary: decode_summary(doc.get("summary")?)?,
        packet_latency: decode_histogram(doc.get("packet_latency")?)?,
        queueing_latency: decode_histogram(doc.get("queueing_latency")?)?,
        all_flows_complete: doc.get("all_flows_complete")?.as_bool()?,
        events_processed: doc.get("events_processed")?.as_u64()?,
        // Wall-clock is never persisted: it is the one non-deterministic
        // field, and cache hits cost no engine time anyway.
        wall_nanos: 0,
    };
    Some(JobOutcome::Completed(Box::new(result)))
}

fn encode_histogram(h: &Histogram, out: &mut String) {
    out.push_str("{\"buckets\": [");
    for (i, (value, count)) in h.sparse_counts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{value},{count}]"));
    }
    // u128 sums exceed what a u64 field can carry; keep the decimal text.
    out.push_str(&format!("], \"sum\": \"{}\"", h.sample_sum()));
    match (h.min_sample(), h.max_sample()) {
        (Some(min), Some(max)) => {
            out.push_str(&format!(", \"min\": {min}, \"max\": {max}}}"));
        }
        _ => out.push_str(", \"min\": null, \"max\": null}"),
    }
}

fn decode_histogram(doc: &JsonValue) -> Option<Histogram> {
    let buckets: Vec<(u64, u64)> = doc
        .get("buckets")?
        .as_array()?
        .iter()
        .map(|pair| {
            let pair = pair.as_array()?;
            Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
        })
        .collect::<Option<_>>()?;
    let sum: u128 = match doc.get("sum")? {
        JsonValue::String(s) => s.parse().ok()?,
        _ => return None,
    };
    let min = doc.get("min")?.as_u64();
    let max = doc.get("max")?.as_u64();
    Some(Histogram::from_sparse(&buckets, sum, min, max))
}

fn encode_summary(s: &RunSummary, out: &mut String) {
    out.push('{');
    out.push_str(&format!(
        "\"delivered_packets\": {}, \"dropped_packets\": {}, \"delivered_bytes\": {}",
        s.delivered_packets, s.dropped_packets, s.delivered_bytes
    ));
    out.push_str(", \"packet_latency\": ");
    encode_stat_summary(&s.packet_latency, out);
    out.push_str(", \"queueing_latency\": ");
    encode_stat_summary(&s.queueing_latency, out);
    out.push_str(&format!(
        ", \"completed_flows\": {}, \"flow_completion_mean_us\": {}, \
         \"flow_completion_max_us\": {}",
        s.completed_flows,
        json::number(s.flow_completion_mean_us),
        json::number(s.flow_completion_max_us)
    ));
    match s.job_completion_us {
        Some(us) => out.push_str(&format!(", \"job_completion_us\": {}", json::number(us))),
        None => out.push_str(", \"job_completion_us\": null"),
    }
    out.push_str(&format!(
        ", \"mean_power_w\": {}, \"max_power_w\": {}, \"plp_commands\": {}, \
         \"topology_reconfigurations\": {}, \"switching_fraction\": {}, \
         \"propagation_fraction\": {}, \"route_cache_hits\": {}, \
         \"route_cache_misses\": {}, \"route_cache_hit_rate\": {}}}",
        json::number(s.mean_power_w),
        json::number(s.max_power_w),
        s.plp_commands,
        s.topology_reconfigurations,
        json::number(s.switching_fraction),
        json::number(s.propagation_fraction),
        s.route_cache_hits,
        s.route_cache_misses,
        json::number(s.route_cache_hit_rate)
    ));
}

fn decode_summary(doc: &JsonValue) -> Option<RunSummary> {
    Some(RunSummary {
        delivered_packets: doc.get("delivered_packets")?.as_u64()?,
        dropped_packets: doc.get("dropped_packets")?.as_u64()?,
        delivered_bytes: doc.get("delivered_bytes")?.as_u64()?,
        packet_latency: decode_stat_summary(doc.get("packet_latency")?)?,
        queueing_latency: decode_stat_summary(doc.get("queueing_latency")?)?,
        completed_flows: doc.get("completed_flows")?.as_u64()? as usize,
        flow_completion_mean_us: doc.get("flow_completion_mean_us")?.as_f64()?,
        flow_completion_max_us: doc.get("flow_completion_max_us")?.as_f64()?,
        job_completion_us: match doc.get("job_completion_us")? {
            JsonValue::Null => None,
            v => Some(v.as_f64()?),
        },
        mean_power_w: doc.get("mean_power_w")?.as_f64()?,
        max_power_w: doc.get("max_power_w")?.as_f64()?,
        plp_commands: doc.get("plp_commands")?.as_u64()? as usize,
        topology_reconfigurations: doc.get("topology_reconfigurations")?.as_u64()? as u32,
        switching_fraction: doc.get("switching_fraction")?.as_f64()?,
        propagation_fraction: doc.get("propagation_fraction")?.as_f64()?,
        route_cache_hits: doc.get("route_cache_hits")?.as_u64()?,
        route_cache_misses: doc.get("route_cache_misses")?.as_u64()?,
        route_cache_hit_rate: doc.get("route_cache_hit_rate")?.as_f64()?,
    })
}

fn encode_stat_summary(s: &Summary, out: &mut String) {
    out.push_str(&format!(
        "{{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \
         \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
        s.count,
        json::number(s.min),
        json::number(s.max),
        json::number(s.mean),
        json::number(s.p50),
        json::number(s.p90),
        json::number(s.p99),
        json::number(s.p999)
    ));
}

fn decode_stat_summary(doc: &JsonValue) -> Option<Summary> {
    Some(Summary {
        count: doc.get("count")?.as_u64()?,
        min: doc.get("min")?.as_f64()?,
        max: doc.get("max")?.as_f64()?,
        mean: doc.get("mean")?.as_f64()?,
        p50: doc.get("p50")?.as_f64()?,
        p90: doc.get("p90")?.as_f64()?,
        p99: doc.get("p99")?.as_f64()?,
        p999: doc.get("p999")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::job_key;
    use rackfabric_scenario::prelude::*;
    use rackfabric_scenario::runner::run_scenario;
    use rackfabric_sim::time::SimTime;
    use rackfabric_sim::units::Bytes;
    use rackfabric_topo::spec::TopologySpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rackfabric-sweep-store-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_sweeps_orphaned_temp_files_but_spares_records_and_young_temps() {
        let spec = ScenarioSpec::new(
            "store-orphan",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .horizon(SimTime::from_millis(20))
        .seed(7);
        let result = run_scenario(&spec);
        let key = job_key(&spec);

        let dir = tmp_dir("orphan");
        let store = ResultStore::open(&dir).unwrap();
        let outcome = JobOutcome::Completed(Box::new(result));
        store
            .put(&key, &crate::key::canonical_spec_json(&spec), &outcome)
            .unwrap();

        // A crashed writer's dropping, stranded next to the real record.
        let shard = dir.join("objects").join(&key.hex()[..2]);
        let orphan = shard.join("deadbeef.tmp.424242.0");
        std::fs::write(&orphan, b"half-written").unwrap();

        // Default grace spares a freshly written temp file (its writer may
        // still be between write and rename).
        let store = ResultStore::open(&dir).unwrap();
        assert!(orphan.exists(), "young temp files must survive open");

        // Zero grace models the temp file having aged past GC_TEMP_GRACE.
        let store2 = ResultStore::open_with_tmp_grace(&dir, std::time::Duration::ZERO).unwrap();
        assert!(!orphan.exists(), "aged orphans are reclaimed at open");
        assert!(store2.get(&key).is_some(), "real records are untouched");
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trips_a_real_job_result_exactly() {
        let spec = ScenarioSpec::new(
            "store-unit",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .horizon(SimTime::from_millis(20))
        .seed(11);
        let result = run_scenario(&spec);
        let key = job_key(&spec);

        let dir = tmp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.get(&key).is_none());
        assert!(store.is_empty());
        let outcome = JobOutcome::Completed(Box::new(result.clone()));
        store
            .put(&key, &crate::key::canonical_spec_json(&spec), &outcome)
            .unwrap();
        assert_eq!(store.len(), 1);

        let JobOutcome::Completed(back) = store.get(&key).unwrap() else {
            panic!("expected a completed outcome");
        };
        assert_eq!(back.summary, result.summary);
        assert_eq!(back.all_flows_complete, result.all_flows_complete);
        assert_eq!(back.events_processed, result.events_processed);
        assert_eq!(back.wall_nanos, 0, "wall-clock must not be persisted");
        assert_eq!(
            back.packet_latency.sparse_counts(),
            result.packet_latency.sparse_counts()
        );
        assert_eq!(
            back.packet_latency.summary(),
            result.packet_latency.summary()
        );
        assert_eq!(
            back.queueing_latency.summary(),
            result.queueing_latency.summary()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_reclaims_orphans_left_by_a_campaign_edit() {
        use crate::campaign::Sweep;
        use rackfabric_scenario::matrix::{AxisValue, Matrix};
        use rackfabric_scenario::runner::Runner;

        let matrix = |loads: &[f64]| {
            let base = ScenarioSpec::new(
                "gc-unit",
                TopologySpec::grid(2, 2, 2),
                WorkloadSpec::shuffle(Bytes::from_kib(1)),
            )
            .horizon(SimTime::from_millis(20));
            Matrix::new(base)
                .axis("load", loads.iter().map(|&l| AxisValue::Load(l)).collect())
                .replicates(2)
                .master_seed(3)
        };
        let dir = tmp_dir("gc");
        let store = ResultStore::open(&dir).unwrap();
        let runner = Runner::single_threaded();
        Sweep::new(matrix(&[0.5, 1.0]))
            .run(&store, &runner)
            .unwrap();
        assert_eq!(store.len(), 4);

        // Edit one axis value (0.5 -> 0.75): the replaced value's records
        // become orphans, the shared load-1.0 cell stays live.
        let edited = matrix(&[0.75, 1.0]);
        let outcome = Sweep::new(edited.clone()).run(&store, &runner).unwrap();
        assert_eq!(outcome.executed, 2, "only the edited cell re-executes");
        assert_eq!(outcome.cached, 2);
        assert_eq!(store.len(), 6, "the edit left two orphans behind");

        let live: Vec<crate::key::JobKey> = edited
            .expand()
            .iter()
            .map(|job| job_key(&job.spec))
            .collect();
        let stats = store.gc(live.iter()).unwrap();
        assert_eq!(
            stats,
            GcStats {
                kept: 4,
                removed: 2
            }
        );
        assert_eq!(store.len(), 4);
        // The orphan count is now zero: a second pass removes nothing.
        assert_eq!(store.gc(live.iter()).unwrap().removed, 0);
        // The surviving campaign still answers fully from the store.
        let warm = Sweep::new(edited).run(&store, &runner).unwrap();
        assert_eq!(warm.executed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_spares_young_temp_files_and_tolerates_races() {
        let dir = tmp_dir("gc-tmp");
        let store = ResultStore::open(&dir).unwrap();
        let key = crate::key::JobKey(42);
        store
            .put(&key, "{}", &JobOutcome::Failed("x".into()))
            .unwrap();
        // A temp file that could belong to a writer currently between its
        // write and rename: younger than the grace period, it must survive
        // the pass (an interrupted sweep's leftovers are reclaimed by any
        // pass after the grace period elapses).
        let stray = store.object_path(&key).with_extension("tmp.9999.0");
        std::fs::write(&stray, "half a record").unwrap();
        let stats = store.gc([key].iter()).unwrap();
        assert_eq!(
            stats,
            GcStats {
                kept: 1,
                removed: 0
            }
        );
        assert!(store.get(&key).is_some());
        assert!(stray.exists(), "in-flight temp files are spared");
        // Temp files never count as records.
        assert_eq!(store.len(), 1);
        // A foreign (non-temp, non-record) file is reclaimed immediately,
        // and a second pass over the now-missing file is not an error.
        let foreign = stray.with_file_name("not-a-record.txt");
        std::fs::write(&foreign, "junk").unwrap();
        assert_eq!(store.gc([key].iter()).unwrap().removed, 1);
        assert!(!foreign.exists());
        assert_eq!(store.gc([key].iter()).unwrap().removed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counts_traffic_and_persists_cumulative_stats() {
        let dir = tmp_dir("stats");
        let store = ResultStore::open(&dir).unwrap();
        let key = crate::key::JobKey(21);
        assert!(store.get(&key).is_none());
        store
            .put(&key, "{}", &JobOutcome::Failed("x".into()))
            .unwrap();
        assert!(store.get(&key).is_some());
        store.gc([key].iter()).unwrap();
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 1,
                puts: 1,
                gc_kept: 1,
                gc_removed: 0
            }
        );
        assert!((store.stats().hit_rate() - 0.5).abs() < 1e-12);

        // Flush drains the in-memory counters into the sidecar...
        let total = store.flush_stats().unwrap();
        assert_eq!(total.hits, 1);
        assert_eq!(store.stats(), StoreStats::default());
        // ...a second flush adds nothing...
        assert_eq!(store.flush_stats().unwrap(), total);
        // ...and a fresh handle accumulates on top of the persisted totals.
        let reopened = ResultStore::open(&dir).unwrap();
        assert!(reopened.get(&key).is_some());
        let cumulative = reopened.flush_stats().unwrap();
        assert_eq!(cumulative.hits, 2);
        assert_eq!(cumulative.puts, 1);
        assert_eq!(reopened.read_stats(), cumulative);
        // The sidecar lives outside the object tree and is not a record.
        assert_eq!(reopened.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_json_round_trips_canonically() {
        let spec = ScenarioSpec::new(
            "store-codec",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .horizon(SimTime::from_millis(20))
        .seed(5);
        let outcome = JobOutcome::Completed(Box::new(run_scenario(&spec)));
        let text = outcome_to_json(&outcome);
        // Canonical form: parsing and re-rendering is the identity.
        assert_eq!(json::canonical(&json::parse(&text).unwrap()), text);
        // Round trip preserves the outcome, so re-encoding reproduces the
        // exact bytes — the daemon's byte-identical-response guarantee.
        let back = outcome_from_json(&text).unwrap();
        assert_eq!(outcome_to_json(&back), text);
        let failed = JobOutcome::Failed("no compute sleds".into());
        let failed_text = outcome_to_json(&failed);
        match outcome_from_json(&failed_text).unwrap() {
            JobOutcome::Failed(msg) => assert_eq!(msg, "no compute sleds"),
            _ => panic!("expected a failed outcome"),
        }
        assert!(outcome_from_json("{ not json").is_none());
    }

    #[test]
    fn concurrent_writers_to_the_same_key_leave_one_clean_record() {
        // The temp-file writer path under contention: many threads racing
        // to persist the same key (the daemon's worst case before
        // single-flight dedup, and the daemon+CLI overlap case after).
        // Every interleaving of write/rename pairs must end with exactly
        // one readable record and zero temp droppings.
        let dir = tmp_dir("contend");
        let store = ResultStore::open(&dir).unwrap();
        let key = crate::key::JobKey(0xABCD);
        let threads: Vec<_> = (0..8)
            .map(|w| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        let outcome = JobOutcome::Failed(format!("writer {w} pass {i}"));
                        store.put(&key, "{}", &outcome).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.len(), 1, "all writers converge on one record");
        assert!(store.get(&key).is_some(), "the survivor parses cleanly");
        let shard = dir.join("objects").join(&key.hex()[..2]);
        let leftovers: Vec<_> = std::fs::read_dir(&shard)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "no temp files survive the race");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stats_flushes_from_two_handles_lose_no_counts() {
        // Two handles on one directory (the daemon + CLI sharing gap):
        // without the advisory lock the sidecar's read-modify-write could
        // interleave and drop counts; with it the totals always add up.
        let dir = tmp_dir("stats-race");
        let handles: Vec<ResultStore> = (0..4).map(|_| ResultStore::open(&dir).unwrap()).collect();
        let threads: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(w, store)| {
                std::thread::spawn(move || {
                    for i in 0..10u64 {
                        let key = crate::key::JobKey((w as u128) << 64 | i as u128);
                        store
                            .put(&key, "{}", &JobOutcome::Failed("x".into()))
                            .unwrap();
                        store.flush_stats().unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(
            store.read_stats().puts,
            40,
            "every handle's puts survive concurrent flushes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn caches_failures_and_survives_corruption() {
        let dir = tmp_dir("failure");
        let store = ResultStore::open(&dir).unwrap();
        let key = crate::key::JobKey(7);
        let failed = JobOutcome::Failed("boom: no compute sleds".into());
        store.put(&key, "{}", &failed).unwrap();
        match store.get(&key).unwrap() {
            JobOutcome::Failed(msg) => assert_eq!(msg, "boom: no compute sleds"),
            _ => panic!("expected a failed outcome"),
        }
        // Corrupt the record: the store treats it as a miss.
        let path = store.object_path(&key);
        std::fs::write(&path, "{ not json").unwrap();
        assert!(store.get(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
