//! Convergence-driven replication budgets.
//!
//! Fixed seed counts either waste jobs on low-variance cells or under-sample
//! noisy ones — and tail percentiles are the paper's headline metric, so the
//! sweep orchestrator replicates **until the p99 confidence interval is
//! narrow enough** instead. Each cell starts at `min_replicates`, and grows
//! one replicate at a time while the relative half-width of the normal-
//! approximation CI over the replicates' p99 latencies exceeds
//! `target_rel_halfwidth` — bounded by `max_replicates` per cell and an
//! optional campaign-wide job budget. All decisions are made from
//! deterministic simulation results in a fixed cell order, so the budgeted
//! job list (and therefore every export byte) is itself deterministic.

/// Replication policy of a budgeted sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPolicy {
    /// Stop replicating a cell once `z * s / (sqrt(n) * mean)` of its
    /// replicate p99s drops to this or below (e.g. `0.1` = ±10 %).
    pub target_rel_halfwidth: f64,
    /// The normal quantile of the confidence level (1.96 = 95 %).
    pub confidence_z: f64,
    /// Replicates every cell runs before convergence is first evaluated
    /// (at least 2: a variance needs two samples).
    pub min_replicates: usize,
    /// Hard cap on replicates per cell.
    pub max_replicates: usize,
    /// Campaign-wide cap on total jobs (cache hits count too — the budget
    /// bounds the *size* of the campaign, not this invocation's CPU time).
    pub max_total_jobs: Option<u64>,
}

impl Default for BudgetPolicy {
    fn default() -> Self {
        BudgetPolicy {
            target_rel_halfwidth: 0.1,
            confidence_z: 1.96,
            min_replicates: 3,
            max_replicates: 32,
            max_total_jobs: None,
        }
    }
}

/// Why a cell stopped replicating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The CI converged below the target.
    Converged,
    /// The per-cell replicate cap was reached first.
    ReplicateCap,
    /// The campaign-wide job budget ran out first.
    JobBudget,
    /// Too few successful replicates to estimate a CI (failures/no samples).
    Degenerate,
    /// The invocation's fresh-execution cap (`max_new_jobs`) interrupted the
    /// campaign before this cell could be decided; a re-run against the same
    /// store continues it.
    Interrupted,
}

impl StopReason {
    /// Short name for reports.
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::ReplicateCap => "replicate-cap",
            StopReason::JobBudget => "job-budget",
            StopReason::Degenerate => "degenerate",
            StopReason::Interrupted => "interrupted",
        }
    }
}

/// Replication verdict of one cell after a budgeted sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CellBudget {
    /// Cell index in matrix expansion order.
    pub cell: usize,
    /// Replicates actually run.
    pub replicates: usize,
    /// Relative CI half-width of the replicate p99s at stop time.
    pub rel_halfwidth: f64,
    /// Why replication stopped.
    pub stop: StopReason,
}

/// The relative CI half-width `z * s / (sqrt(n) * mean)` of a sample of
/// per-replicate p99 values. Returns `None` when it cannot be estimated
/// (fewer than two samples or a zero mean).
pub fn rel_halfwidth(p99s: &[f64], confidence_z: f64) -> Option<f64> {
    if p99s.len() < 2 {
        return None;
    }
    let n = p99s.len() as f64;
    let mean = p99s.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return None;
    }
    // Sample (n-1) variance: the replicates are an i.i.d. sample of the
    // seed distribution.
    let var = p99s.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    Some(confidence_z * var.sqrt() / (n.sqrt() * mean))
}

/// Whether a cell with these replicate p99s has converged under `policy`.
/// A cell whose CI cannot be estimated never reports converged.
pub fn converged(p99s: &[f64], policy: &BudgetPolicy) -> bool {
    p99s.len() >= policy.min_replicates
        && rel_halfwidth(p99s, policy.confidence_z)
            .is_some_and(|w| w <= policy.target_rel_halfwidth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_samples_converge_and_loose_ones_do_not() {
        let policy = BudgetPolicy::default();
        let tight = [100.0, 101.0, 99.5];
        assert!(converged(&tight, &policy));
        let loose = [100.0, 300.0, 40.0];
        assert!(!converged(&loose, &policy));
    }

    #[test]
    fn halfwidth_shrinks_with_sample_count() {
        let few = [90.0, 110.0];
        let many = [90.0, 110.0, 90.0, 110.0, 90.0, 110.0, 90.0, 110.0];
        let w_few = rel_halfwidth(&few, 1.96).unwrap();
        let w_many = rel_halfwidth(&many, 1.96).unwrap();
        assert!(w_many < w_few);
    }

    #[test]
    fn degenerate_samples_yield_no_estimate() {
        assert_eq!(rel_halfwidth(&[], 1.96), None);
        assert_eq!(rel_halfwidth(&[5.0], 1.96), None);
        assert_eq!(rel_halfwidth(&[0.0, 0.0], 1.96), None);
        assert!(!converged(&[5.0], &BudgetPolicy::default()));
    }
}
