//! Cooperative campaign cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the party
//! that wants a campaign stopped (a daemon scheduler, a signal handler, a
//! test) and the sweep dispatcher that checks it between dispatch chunks.
//! Cancellation is **cooperative and batch-aligned**: jobs already handed
//! to the engine run to completion and are persisted, so an interrupted
//! campaign always leaves a clean prefix in the store (and, behind the
//! command layer, a clean write-ahead journal prefix). That makes a
//! cancelled campaign indistinguishable from a `max_new_jobs` interruption:
//! `Executor::recover` or a plain warm re-run completes it to byte-identical
//! output.
//!
//! For deterministic tests, [`CancelToken::after_checks`] builds a token
//! that trips itself after a fixed number of dispatcher checkpoints,
//! removing the race between the cancelling thread and the dispatch loop.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// A shared cancellation flag; clones observe the same state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Remaining dispatcher checkpoints before the token trips itself;
    /// negative means "no fuse" (the token only trips via [`cancel`]).
    ///
    /// [`cancel`]: CancelToken::cancel
    fuse: AtomicI64,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            cancelled: AtomicBool::new(false),
            fuse: AtomicI64::new(-1),
        }
    }
}

impl CancelToken {
    /// A token that trips only when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that allows exactly `checks` dispatcher checkpoints and then
    /// trips itself — a deterministic "cancel mid-campaign" for tests,
    /// independent of thread timing.
    pub fn after_checks(checks: u64) -> CancelToken {
        let token = CancelToken::new();
        token
            .inner
            .fuse
            .store(checks.min(i64::MAX as u64) as i64, Ordering::SeqCst);
        token
    }

    /// Trips the token. Idempotent; all clones observe it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once the token has tripped (does not consume fuse checkpoints).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// A dispatcher checkpoint: returns `true` when the campaign must stop
    /// dispatching. Counts against an [`after_checks`] fuse, tripping the
    /// token permanently when it runs out.
    ///
    /// [`after_checks`]: CancelToken::after_checks
    pub fn checkpoint(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        let fuse = self.inner.fuse.load(Ordering::SeqCst);
        if fuse < 0 {
            return false;
        }
        let remaining = self.inner.fuse.fetch_sub(1, Ordering::SeqCst);
        if remaining <= 0 {
            self.cancel();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        assert!(!a.checkpoint(), "an untripped token never interrupts");
        b.cancel();
        assert!(a.is_cancelled());
        assert!(a.checkpoint());
    }

    #[test]
    fn fuse_trips_after_the_allowed_checkpoints() {
        let token = CancelToken::after_checks(2);
        assert!(!token.checkpoint());
        assert!(!token.checkpoint());
        assert!(token.checkpoint(), "third checkpoint trips the fuse");
        assert!(token.is_cancelled(), "a tripped fuse is permanent");
        assert!(token.checkpoint());
    }

    #[test]
    fn zero_fuse_trips_immediately() {
        let token = CancelToken::after_checks(0);
        assert!(!token.is_cancelled(), "pure reads never consume the fuse");
        assert!(token.checkpoint());
    }
}
