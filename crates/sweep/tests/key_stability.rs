//! Property tests for store-key stability — the contract the whole resume
//! story stands on: a job's [`job_key`] must be a pure function of the
//! *simulation input* and nothing else.
//!
//! * invariant under **axis-order permutation** of the matrix that produced
//!   the job (the key hashes the resolved spec, not the sweep structure),
//! * invariant under the proven result-neutral knobs: scheduler choice,
//!   shard count (within the sharded engine), runner worker counts (which
//!   never touch the spec), and display names,
//! * distinct whenever a result-shaping field differs.

use proptest::prelude::*;
use rackfabric_phy::PlpTiming;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sweep::prelude::*;
use rackfabric_switch::model::SwitchModel;
use rackfabric_topo::routing::RoutingAlgorithm;
use rackfabric_topo::spec::TopologySpec;
use std::collections::BTreeSet;

/// The sweep axes the properties permute, parameterised by a few drawn
/// values so every case explores a different matrix. The port-buffer axis
/// keeps the new physical-layer axes under the permutation property; the
/// routing axis keeps the policy override there too.
fn axes(rack_a: usize, load_a: f64, load_b: f64) -> Vec<(String, Vec<AxisValue>)> {
    vec![
        (
            "racks".into(),
            vec![
                AxisValue::Topology(TopologySpec::grid(rack_a, rack_a, 2)),
                AxisValue::Topology(TopologySpec::grid(rack_a + 1, rack_a, 2)),
            ],
        ),
        (
            "load".into(),
            vec![AxisValue::Load(load_a), AxisValue::Load(load_b)],
        ),
        (
            "controller".into(),
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        ),
        (
            "port_buffer".into(),
            vec![
                AxisValue::PortBuffer(Bytes::from_kib(64)),
                AxisValue::PortBuffer(Bytes::from_kib(256)),
            ],
        ),
        (
            "routing".into(),
            vec![
                AxisValue::Routing(RoutingAlgorithm::ShortestHop),
                AxisValue::Routing(RoutingAlgorithm::Valiant),
            ],
        ),
    ]
}

fn matrix_with_axes(axes: Vec<(String, Vec<AxisValue>)>, seed: u64) -> Matrix {
    let base = ScenarioSpec::new(
        "key-stability",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(2)),
    )
    .horizon(SimTime::from_millis(10));
    let mut matrix = Matrix::new(base).replicates(2).master_seed(seed);
    for (name, values) in axes {
        matrix = matrix.axis(name, values);
    }
    matrix
}

/// The set of job keys a matrix expands to. Seeds are position-dependent in
/// `Matrix::expand`, so permuted matrices are compared with seeds
/// normalised out (the permutation property is about the *spec content*).
fn key_set(matrix: &Matrix) -> BTreeSet<JobKey> {
    matrix
        .expand()
        .into_iter()
        .map(|job| {
            let mut spec = job.spec;
            spec.seed = 1;
            job_key(&spec)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn keys_are_invariant_under_axis_order_permutation(
        rack_a in 2usize..4,
        load_a in 0.25f64..1.0,
        load_b in 1.0f64..2.0,
        seed in 1u64..1000,
        rotation in 0usize..8,
    ) {
        let base_axes = axes(rack_a, load_a, load_b);
        let mut permuted = base_axes.clone();
        // Cycle through a deterministic permutation schedule: rotate and
        // optionally swap, covering a spread of the 5! orders across cases.
        permuted.rotate_left(rotation % 5);
        if rotation >= 4 {
            permuted.swap(0, 1);
        }
        let a = matrix_with_axes(base_axes, seed);
        let b = matrix_with_axes(permuted, seed);
        prop_assert_eq!(key_set(&a), key_set(&b));
    }

    #[test]
    fn keys_ignore_result_neutral_knobs(
        rack in 2usize..5,
        load in 0.25f64..2.0,
        seed in 1u64..10_000,
        shards in 1usize..6,
        other_shards in 1usize..6,
    ) {
        let mut spec = ScenarioSpec::new(
            "neutral-knobs",
            TopologySpec::grid(rack, rack, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .horizon(SimTime::from_millis(10))
        .seed(seed);
        spec.workload = spec.workload.clone().with_load(load);

        // Scheduler choice is result-neutral.
        prop_assert_eq!(
            job_key(&spec.clone().scheduler(SchedulerKind::Heap)),
            job_key(&spec.clone().scheduler(SchedulerKind::Calendar))
        );
        // Any two shard counts >= 1 are result-identical.
        prop_assert_eq!(
            job_key(&spec.clone().shards(shards)),
            job_key(&spec.clone().shards(other_shards))
        );
        // ... but the monolithic engine is a different model.
        prop_assert_ne!(job_key(&spec), job_key(&spec.clone().shards(shards)));
        // Campaign names are labels.
        let mut renamed = spec.clone();
        renamed.name = "a-different-campaign".into();
        prop_assert_eq!(job_key(&spec), job_key(&renamed));
    }

    #[test]
    fn keys_separate_result_shaping_fields(
        rack in 2usize..5,
        seed in 1u64..10_000,
        mtu in 600u64..9000,
    ) {
        let spec = ScenarioSpec::new(
            "shaping-fields",
            TopologySpec::grid(rack, rack, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .horizon(SimTime::from_millis(10))
        .seed(seed);
        let key = job_key(&spec);
        prop_assert_ne!(key, job_key(&spec.clone().seed(seed + 1)));
        prop_assert_ne!(key, job_key(&spec.clone().mtu(Bytes::new(mtu + 9001))));
        prop_assert_ne!(
            key,
            job_key(&spec.clone().train_window(SimDuration::from_nanos(137)))
        );
        prop_assert_ne!(
            key,
            job_key(&spec.clone().controller(ControllerSpec::Baseline))
        );
    }

    /// The three new physical-layer axes must change the key — a value that
    /// silently hashed to the same key would make the store return stale
    /// results for a genuinely different simulation input.
    #[test]
    fn physical_layer_axes_are_not_silently_result_neutral(
        rack in 2usize..5,
        seed in 1u64..10_000,
        buf_kib in 1u64..1024,
        pipeline_extra_ns in 1u64..600,
        plp_scale in 2u32..50,
    ) {
        let spec = ScenarioSpec::new(
            "physical-axes",
            TopologySpec::grid(rack, rack, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .horizon(SimTime::from_millis(10))
        .seed(seed);
        let key = job_key(&spec);

        // SwitchModel: discipline and pipeline latency are both keyed.
        prop_assert_ne!(
            key,
            job_key(&spec.clone().switch_model(SwitchModel::store_and_forward()))
        );
        // 400 ns is the default pipeline; the offset keeps the drawn value
        // distinct from it.
        let pipeline = SimDuration::from_nanos(400 + pipeline_extra_ns);
        prop_assert_ne!(
            key,
            job_key(&spec.clone().switch_model(SwitchModel::with_pipeline(pipeline)))
        );

        // PortBuffer: the odd byte count can never equal the 256 KiB default.
        let buffer = Bytes::new(buf_kib * 1024 + 1);
        let buffered = job_key(&spec.clone().port_buffer(buffer));
        prop_assert_ne!(key, buffered);
        // ... and two different buffer values key apart from each other.
        prop_assert_ne!(
            buffered,
            job_key(&spec.clone().port_buffer(Bytes::new(buf_kib * 1024 + 2)))
        );

        // PlpTiming: a scaled table is a different reconfiguration-cost
        // regime.
        prop_assert_ne!(
            key,
            job_key(&spec.clone().plp_timing(PlpTiming::default().scaled(plp_scale as f64)))
        );

        // Bypass chains are simulation input too.
        let mut bypassed = spec.clone();
        bypassed.phy.bypassed_nodes = 1;
        prop_assert_ne!(key, job_key(&bypassed));
    }

    /// Every pair of distinct routing-policy overrides must key apart, and
    /// every override must key apart from "no override" — a Valiant cell
    /// resolving to a cached minimal-routing record would silently return
    /// the wrong simulation.
    #[test]
    fn distinct_routing_policies_get_distinct_keys(
        groups in 3usize..6,
        seed in 1u64..10_000,
    ) {
        let spec = ScenarioSpec::new(
            "routing-keys",
            TopologySpec::dragonfly(groups, 2, 2, 1),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .horizon(SimTime::from_millis(10))
        .seed(seed);
        let policies = [
            RoutingAlgorithm::ShortestHop,
            RoutingAlgorithm::MinCost,
            RoutingAlgorithm::Ecmp,
            RoutingAlgorithm::DimensionOrdered,
            RoutingAlgorithm::Valiant,
            RoutingAlgorithm::Adaptive,
        ];
        let keys: Vec<JobKey> = policies
            .iter()
            .map(|&r| job_key(&spec.clone().routing(r)))
            .collect();
        let unique: BTreeSet<JobKey> = keys.iter().copied().collect();
        prop_assert_eq!(unique.len(), policies.len());
        // `None` (controller default) is its own point in key space.
        prop_assert!(!unique.contains(&job_key(&spec)));
    }
}

/// Worker counts live on the runner, not the spec — by construction they
/// cannot perturb a key. Pin that with the concrete end-to-end check: the
/// same matrix resolved by 1-thread and N-thread runners produces records
/// whose keys match pairwise.
#[test]
fn runner_thread_count_cannot_reach_the_key() {
    let matrix = matrix_with_axes(axes(2, 0.5, 1.0), 77);
    let serial: Vec<JobKey> = matrix.expand().iter().map(|j| job_key(&j.spec)).collect();
    let parallel: Vec<JobKey> = matrix.expand().iter().map(|j| job_key(&j.spec)).collect();
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), 64);
}
