//! Concurrency/determinism acceptance suite for `rackfabricd` — the issue's
//! criteria, verbatim:
//!
//! 1. a storm of ≥ 1000 concurrent mixed cold/warm submissions from ≥ 16
//!    client threads produces **zero** determinism violations: every
//!    response is byte-identical to the batch executor's answer for the
//!    same command, warm requests execute nothing (store puts == distinct
//!    scenarios), and the p99 of the response-time histogram is recorded
//!    in the obs registry and printed,
//! 2. N threads submitting the **same** command concurrently cost one
//!    store execution and receive one byte-identical answer,
//! 3. queued jobs cancel over the wire, the queue bound rejects overload,
//!    and neither disturbs the surviving jobs' bytes.
//!
//! Flake resistance: the daemon binds port 0 (OS-assigned, no collisions),
//! every wait is bounded by a generous deadline, and a timeout panics with
//! the scheduler counters and metrics registry attached — the suite is
//! timing-independent on a 1-core container and a 4-vCPU CI runner alike.

use rackfabric::prelude::TopologySpec;
use rackfabric_cmd::command::Command;
use rackfabric_cmd::executor::Executor;
use rackfabric_daemon::prelude::*;
use rackfabric_obs::metrics::Registry;
use rackfabric_obs::{Observer, TimeDomain};
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sweep::key::canonical_spec_json;
use rackfabric_sweep::lock::StoreLock;
use rackfabric_sweep::store::ResultStore;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-request client timeout: a liveness backstop, not a latency target.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rackfabricd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A daemon over a fresh store in `dir`, with a metrics registry attached.
fn boot(dir: &PathBuf, workers: usize, max_queue: usize) -> (Arc<Executor>, Daemon, Observer) {
    let observer = Observer::off().with_registry(Arc::new(Registry::new()));
    let store = ResultStore::open(dir).unwrap();
    let runner = Runner::new(1).with_observer(observer.clone());
    let exec = Arc::new(Executor::new(store, runner));
    let daemon = Daemon::start(
        exec.clone(),
        DaemonConfig {
            workers,
            max_queue,
            observer: observer.clone(),
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    (exec, daemon, observer)
}

/// Tiny distinct scenarios: cheap to execute once, realistic to replay.
fn spec_pool(count: usize) -> Vec<Command> {
    (0..count)
        .map(|n| {
            let spec = ScenarioSpec::new(
                "daemon-acceptance",
                TopologySpec::grid(2, 2, 2),
                WorkloadSpec::Shuffle {
                    partition: Bytes::from_kib(2),
                    load: if n % 2 == 0 { 0.5 } else { 1.0 },
                },
            )
            .horizon(SimTime::from_millis(3))
            .seed(7000 + n as u64);
            Command::RunScenario {
                spec_json: canonical_spec_json(&spec),
            }
        })
        .collect()
}

/// The reference answers, produced by the plain batch path against an
/// independent store — no daemon, no scheduler, no sockets.
fn reference_lines(dir: &PathBuf, commands: &[Command]) -> Vec<String> {
    let exec = Executor::new(ResultStore::open(dir).unwrap(), Runner::new(1));
    commands
        .iter()
        .map(|command| {
            execute_oneshot(&exec, command)
                .expect("reference execution")
                .1
        })
        .collect()
}

/// Bounded wait with diagnostics: on deadline, panics with the scheduler
/// counters and the metrics registry so a hung run explains itself.
fn wait_until(daemon: &Daemon, what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        if start.elapsed() > deadline {
            let counts = daemon.scheduler().counts();
            let metrics = daemon
                .observer()
                .registry()
                .map(|r| r.render_json())
                .unwrap_or_default();
            panic!(
                "timed out after {deadline:?} waiting for {what}\n  scheduler: {counts:?}\n  metrics: {metrics}"
            );
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn storm_of_mixed_cold_and_warm_requests_is_byte_deterministic() {
    const CLIENTS: usize = 16;
    const PER_CLIENT: usize = 63; // 16 × 63 = 1008 ≥ 1000
    const SPECS: usize = 8;

    let ref_dir = tmp_dir("storm-ref");
    let dir = tmp_dir("storm");
    let pool = Arc::new(spec_pool(SPECS));
    let reference = Arc::new(reference_lines(&ref_dir, &pool));

    let (exec, daemon, observer) = boot(&dir, 4, CLIENTS * PER_CLIENT);
    let client = Client::new(daemon.addr(), CLIENT_TIMEOUT);

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let client = client.clone();
        let pool = pool.clone();
        let reference = reference.clone();
        handles.push(std::thread::spawn(move || {
            let mut violations = Vec::new();
            for r in 0..PER_CLIENT {
                // Stride the pool so every thread mixes cold-contended and
                // warm scenarios in a different order.
                let n = (c + r * 5) % pool.len();
                let reply = client
                    .submit(
                        &format!("tenant-{}", c % 4),
                        (n % 3) as i64,
                        pool[n].clone(),
                    )
                    .unwrap_or_else(|e| panic!("client {c} request {r}: {e}"));
                if reply.result_json != reference[n] {
                    violations.push(format!(
                        "client {c} request {r} spec {n}:\n  daemon {}\n  batch  {}",
                        reply.result_json, reference[n]
                    ));
                }
            }
            violations
        }));
    }
    let violations: Vec<String> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    assert!(
        violations.is_empty(),
        "{} determinism violation(s):\n{}",
        violations.len(),
        violations.join("\n")
    );

    // Warm requests executed nothing: exactly one engine run per distinct
    // scenario, everything else answered by the store or dedup.
    assert_eq!(
        exec.store().stats().puts,
        SPECS as u64,
        "every non-first request must be served without executing"
    );
    let counts = daemon.scheduler().counts();
    assert_eq!(counts.rejected, 0, "the queue bound must admit the storm");

    // The p99 response time is recorded in the obs registry; print it.
    let registry = observer.registry().expect("boot() attaches a registry");
    let histogram = registry.histogram("daemon.response_ns", TimeDomain::Wall);
    assert_eq!(
        histogram.count(),
        counts.completed,
        "every completed job must record a response-time sample"
    );
    let to_ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "storm: {} requests ({} scheduled, {} dedup-attached, {} warm hits) — response time p50 ≤ {:.2} ms, p99 ≤ {:.2} ms, max {:.2} ms",
        CLIENTS * PER_CLIENT,
        counts.completed,
        counts.dedup_attached,
        counts.warm_hits,
        to_ms(histogram.quantile_bound(0.50)),
        to_ms(histogram.quantile_bound(0.99)),
        to_ms(histogram.max()),
    );

    client.shutdown().unwrap();
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn concurrent_identical_submissions_cost_one_execution_and_one_answer() {
    const THREADS: usize = 12;

    let ref_dir = tmp_dir("dedup-ref");
    let dir = tmp_dir("dedup");
    let command = spec_pool(1).remove(0);
    let reference = reference_lines(&ref_dir, std::slice::from_ref(&command)).remove(0);

    let (exec, daemon, _observer) = boot(&dir, 2, THREADS);
    let client = Client::new(daemon.addr(), CLIENT_TIMEOUT);

    // All threads release together to maximise in-flight overlap; the
    // assertions below hold for any interleaving.
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let client = client.clone();
        let command = command.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            client
                .submit("same-tenant", 0, command)
                .unwrap_or_else(|e| panic!("thread {t}: {e}"))
        }));
    }
    let replies: Vec<SubmitReply> = handles
        .into_iter()
        .map(|h| h.join().expect("submit thread"))
        .collect();

    for reply in &replies {
        assert_eq!(
            reply.result_json, reference,
            "every thread must receive the batch path's bytes"
        );
    }
    assert_eq!(
        exec.store().stats().puts,
        1,
        "identical submissions must share one store execution"
    );
    let counts = daemon.scheduler().counts();
    assert_eq!(
        counts.completed + counts.dedup_attached,
        THREADS as u64,
        "every submission either scheduled a job or attached to one"
    );
    println!(
        "dedup: {THREADS} identical submissions — {} job(s) scheduled, {} attached, {} warm hit(s), 1 store put",
        counts.completed, counts.dedup_attached, counts.warm_hits
    );

    client.shutdown().unwrap();
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn queued_jobs_cancel_over_the_wire_and_backpressure_rejects_overload() {
    let ref_dir = tmp_dir("cancel-ref");
    let dir = tmp_dir("cancel");
    let pool = spec_pool(3);
    let reference = reference_lines(&ref_dir, &pool);

    // One worker, queue bound 2: occupancy is fully under test control.
    let (_exec, daemon, _observer) = boot(&dir, 1, 2);
    let client = Client::new(daemon.addr(), CLIENT_TIMEOUT);
    let deadline = Duration::from_secs(90);

    // A: a `gc-store` job. GC takes the store's advisory lock, which this
    // test is already holding — the only worker blocks on the flock until
    // the guard drops, so occupancy below is deterministic, not a race
    // against a job's runtime. (The guard is declared after the daemon:
    // if an assertion unwinds, it releases before the daemon's Drop joins
    // the blocked worker.)
    let gate = StoreLock::exclusive(&dir).unwrap();
    let a = {
        let client = client.clone();
        let blocker = Command::GcStore { live: Vec::new() };
        std::thread::spawn(move || client.submit("blocker", 10, blocker))
    };
    wait_until(&daemon, "the blocker to start", deadline, || {
        daemon.scheduler().counts().active == 1
    });

    // B and C queue behind A; D overflows the bound and is rejected.
    let submit_queued = |n: usize| {
        let client = client.clone();
        let command = pool[n].clone();
        std::thread::spawn(move || client.submit(&format!("tenant-{n}"), 0, command))
    };
    let b = submit_queued(0);
    wait_until(&daemon, "B to queue", deadline, || {
        daemon.scheduler().counts().queued == 1
    });
    let c = submit_queued(1);
    wait_until(&daemon, "C to queue", deadline, || {
        daemon.scheduler().counts().queued == 2
    });
    let d = client.submit("tenant-d", 0, pool[2].clone());
    let err = d.expect_err("the queue bound must reject the fourth job");
    assert!(
        err.to_string().contains("queue full"),
        "rejection must carry the reason: {err}"
    );

    // Cancel B while it waits. Its client sees a cancellation, C's bytes
    // are untouched, and A completes normally.
    // Ids are assigned in submission order, and each submission above was
    // gated on its predecessor's state change: A=j-1, B=j-2, C=j-3.
    assert!(client.cancel("j-2").unwrap(), "B is queued and cancellable");
    let b_err = b
        .join()
        .unwrap()
        .expect_err("B must observe its cancellation");
    assert_eq!(b_err.kind(), std::io::ErrorKind::Interrupted);

    // Release the worker: A (gc of an empty store) completes, then C runs.
    drop(gate);
    let a_reply = a.join().unwrap().expect("the blocker completes");
    assert!(!a_reply.cached, "gc is never a warm hit");
    let c_reply = c.join().unwrap().expect("C completes after A");
    assert_eq!(
        c_reply.result_json, reference[1],
        "a cancellation next to C must not disturb its bytes"
    );

    let counts = daemon.scheduler().counts();
    assert_eq!(counts.cancelled, 1);
    assert_eq!(counts.rejected, 1);
    assert_eq!(counts.completed, 3, "A, B (cancelled) and C are terminal");

    client.shutdown().unwrap();
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}
