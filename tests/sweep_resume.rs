//! End-to-end acceptance tests of the `rackfabric-sweep` orchestrator — the
//! issue's acceptance criteria, verbatim:
//!
//! 1. a re-run against a warm store executes **zero** jobs and reproduces
//!    the complete report file set (CSV/JSON/SVG/markdown) byte for byte,
//! 2. an interrupted sweep (killed after K jobs) resumed against the same
//!    store completes the remainder and matches an uninterrupted run
//!    byte for byte,
//! 3. editing exactly one axis value re-executes only the affected cells,
//! 4. the budgeted runner meets the p99 CI-width target with fewer jobs
//!    than fixed-seed replication on at least one cell.

use rackfabric::prelude::TopologySpec;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sweep::prelude::*;
use std::path::PathBuf;

fn tmp_store(tag: &str) -> (PathBuf, ResultStore) {
    let dir =
        std::env::temp_dir().join(format!("rackfabric-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), ResultStore::open(&dir).unwrap())
}

/// racks × load × controller with 2 seeds: 8 cells, 16 jobs.
fn campaign(loads: [f64; 2]) -> Matrix {
    let base = ScenarioSpec::new(
        "resume-acceptance",
        TopologySpec::grid(2, 2, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(2)),
    )
    .horizon(SimTime::from_millis(20));
    Matrix::new(base)
        .axis(
            "racks",
            vec![
                AxisValue::Topology(TopologySpec::grid(2, 2, 2)),
                AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
            ],
        )
        .axis(
            "load",
            vec![AxisValue::Load(loads[0]), AxisValue::Load(loads[1])],
        )
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .replicates(2)
        .master_seed(404)
}

#[test]
fn warm_store_rerun_executes_nothing_and_reproduces_every_byte() {
    let (dir, store) = tmp_store("warm");
    let runner = Runner::new(2);
    let sweep = Sweep::new(campaign([0.5, 1.0]));

    let cold = sweep.run(&store, &runner).unwrap();
    assert_eq!(cold.executed, 16);
    assert_eq!(cold.cached, 0);

    let warm = sweep.run(&store, &runner).unwrap();
    assert_eq!(warm.executed, 0, "warm re-run must execute zero jobs");
    assert_eq!(warm.cached, 16);

    // The complete report file set — aggregates, per-job rows, SVG plots,
    // markdown — must come out byte-identical.
    let cold_files = render_files("resume-acceptance", &cold);
    let warm_files = render_files("resume-acceptance", &warm);
    assert_eq!(cold_files.len(), warm_files.len());
    for ((name_a, bytes_a), (name_b, bytes_b)) in cold_files.iter().zip(&warm_files) {
        assert_eq!(name_a, name_b);
        assert_eq!(bytes_a, bytes_b, "file {name_a} diverged on the warm run");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_resumes_to_byte_identical_exports() {
    let (dir_ref, store_ref) = tmp_store("kill-ref");
    let (dir, store) = tmp_store("kill");
    let runner = Runner::new(2);

    // Reference: one uninterrupted run in a separate store.
    let reference = Sweep::new(campaign([0.5, 1.0]))
        .run(&store_ref, &runner)
        .unwrap();

    // "Kill after K jobs": the sweep stops dispatching after 5 fresh
    // executions, exactly as if the process had died mid-campaign (every
    // completed job is already durable in the store).
    let killed = Sweep::new(campaign([0.5, 1.0]))
        .max_new_jobs(5)
        .run(&store, &runner)
        .unwrap();
    assert!(killed.interrupted);
    assert_eq!(killed.executed, 5);
    assert_eq!(killed.skipped, 11);

    // Resume: only the remainder executes, and the final file set matches
    // the uninterrupted reference byte for byte.
    let resumed = Sweep::new(campaign([0.5, 1.0]))
        .run(&store, &runner)
        .unwrap();
    assert_eq!(
        resumed.executed, 11,
        "resume must run exactly the remainder"
    );
    assert_eq!(resumed.cached, 5);
    assert_eq!(
        render_files("resume-acceptance", &reference),
        render_files("resume-acceptance", &resumed)
    );
    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_axis_value_reexecutes_only_the_affected_cells() {
    let (dir, store) = tmp_store("edit");
    let runner = Runner::new(2);

    let first = Sweep::new(campaign([0.5, 1.0]))
        .run(&store, &runner)
        .unwrap();
    assert_eq!(first.executed, 16);

    // Edit exactly one axis value: load 1.0 -> 1.5. Half the cells (the
    // load=1.0 ones) are affected; the load=0.5 half must stay cached.
    let edited = Sweep::new(campaign([0.5, 1.5]))
        .run(&store, &runner)
        .unwrap();
    assert_eq!(
        edited.executed, 8,
        "only the cells containing the edited value may re-execute"
    );
    assert_eq!(edited.cached, 8);

    // And the edited campaign is itself now warm.
    let warm = Sweep::new(campaign([0.5, 1.5]))
        .run(&store, &runner)
        .unwrap();
    assert_eq!(warm.executed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budgeted_runner_beats_fixed_replication_while_meeting_the_target() {
    let (dir_fixed, store_fixed) = tmp_store("fixed");
    let (dir_budget, store_budget) = tmp_store("budget");
    let runner = Runner::new(2);

    // Fixed-seed replication: 8 seeds per cell, no questions asked.
    const FIXED_REPLICATES: usize = 8;
    let fixed = Sweep::new(campaign([0.5, 1.0]).replicates(FIXED_REPLICATES))
        .run(&store_fixed, &runner)
        .unwrap();
    let fixed_jobs = fixed.records.len();
    assert_eq!(fixed_jobs, 8 * FIXED_REPLICATES);

    // Budgeted: same target space, replicates grow only until the p99 CI
    // converges (cap at the same 8).
    let policy = BudgetPolicy {
        target_rel_halfwidth: 0.25,
        min_replicates: 2,
        max_replicates: FIXED_REPLICATES,
        ..BudgetPolicy::default()
    };
    let budgeted = Sweep::new(campaign([0.5, 1.0]))
        .budget(policy)
        .run(&store_budget, &runner)
        .unwrap();
    let budgeted_jobs = budgeted.records.len();

    assert!(
        budgeted_jobs < fixed_jobs,
        "budgeted replication must use fewer jobs ({budgeted_jobs}) than fixed \
         ({fixed_jobs})"
    );
    let converged_count = budgeted
        .cell_budgets
        .iter()
        .filter(|b| {
            b.stop == StopReason::Converged
                && b.replicates < FIXED_REPLICATES
                && b.rel_halfwidth <= policy.target_rel_halfwidth
        })
        .count();
    assert!(
        converged_count >= 1,
        "at least one cell must meet the CI target with fewer replicates than \
         the fixed count: {:?}",
        budgeted.cell_budgets
    );
    let _ = std::fs::remove_dir_all(&dir_fixed);
    let _ = std::fs::remove_dir_all(&dir_budget);
}
