//! Cross-crate integration tests: workloads -> core fabric -> metrics, on the
//! public API only.

use rackfabric::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_topo::NodeId;
use rackfabric_workload::{Flow, IncastWorkload, MapReduceShuffle, Workload, WorkloadFlowId};

fn quick(seed: u64, ms: u64) -> SimConfig {
    SimConfig::with_seed(seed).horizon(SimTime::from_millis(ms))
}

#[test]
fn adaptive_fabric_beats_or_matches_baseline_on_a_shuffle() {
    let flows = MapReduceShuffle::all_to_all(16, Bytes::from_kib(32)).generate(&mut DetRng::new(1));

    let mut base_cfg = FabricConfig::baseline(TopologySpec::grid(4, 4, 2));
    base_cfg.sim = quick(1, 1_000);
    let baseline = run_fabric(base_cfg, flows.clone());

    let mut adaptive_cfg = FabricConfig::adaptive(TopologySpec::grid(4, 4, 2));
    adaptive_cfg.upgrade_spec = Some(TopologySpec::torus(4, 4, 1));
    adaptive_cfg.crc.epoch = SimDuration::from_micros(20);
    adaptive_cfg.sim = quick(1, 1_000);
    let adaptive = run_fabric(adaptive_cfg, flows);

    assert!(baseline.all_flows_complete());
    assert!(adaptive.all_flows_complete());
    let b = baseline.metrics.summary().job_completion_us.unwrap();
    let a = adaptive.metrics.summary().job_completion_us.unwrap();
    // The adaptive fabric escalates to the torus and must not be slower than
    // the static grid by more than a small reconfiguration overhead.
    assert!(
        a <= b * 1.1,
        "adaptive ({a:.1} us) should not lose to the baseline ({b:.1} us)"
    );
    assert_eq!(adaptive.metrics.topology_reconfigurations, 1);
}

#[test]
fn incast_creates_congestion_and_queueing_at_the_sink() {
    let flows = IncastWorkload {
        sink: NodeId(0),
        senders: (0..9u32).map(NodeId).collect(),
        request_size: Bytes::from_kib(64),
        start: SimTime::ZERO,
    }
    .generate(&mut DetRng::new(2));
    let mut cfg = FabricConfig::baseline(TopologySpec::grid(3, 3, 2));
    cfg.sim = quick(2, 1_000);
    let fabric = run_fabric(cfg, flows);
    assert!(fabric.all_flows_complete());
    let s = fabric.metrics.summary();
    // Eight senders into one 2-lane sink link: queueing must dominate.
    assert!(
        s.queueing_latency.p99 > s.packet_latency.p50 * 0.1,
        "incast should produce visible queueing (q p99 {} vs pkt p50 {})",
        s.queueing_latency.p99,
        s.packet_latency.p50
    );
}

#[test]
fn routing_algorithms_all_deliver_the_same_bytes() {
    for routing in [
        RoutingAlgorithm::ShortestHop,
        RoutingAlgorithm::MinCost,
        RoutingAlgorithm::Ecmp,
        RoutingAlgorithm::DimensionOrdered,
    ] {
        let flows =
            MapReduceShuffle::all_to_all(9, Bytes::from_kib(4)).generate(&mut DetRng::new(3));
        let expected: u64 = flows.iter().map(|f| f.size.as_u64()).sum();
        let mut cfg = FabricConfig::adaptive(TopologySpec::grid(3, 3, 2));
        cfg.routing = routing;
        cfg.sim = quick(3, 1_000);
        let fabric = run_fabric(cfg, flows);
        assert!(fabric.all_flows_complete(), "{routing:?} failed to finish");
        assert_eq!(
            fabric.metrics.delivered_bytes, expected,
            "{routing:?} delivered the wrong volume"
        );
    }
}

#[test]
fn torus_start_beats_grid_start_for_edge_to_edge_traffic() {
    // Corner-to-corner flows benefit directly from wrap-around links.
    let mk_flows = || {
        (0..4u64)
            .map(|i| Flow {
                id: WorkloadFlowId(i),
                src: NodeId(0),
                dst: NodeId(15),
                size: Bytes::from_kib(64),
                start_at: SimTime::ZERO,
            })
            .collect::<Vec<_>>()
    };
    let mut grid_cfg = FabricConfig::baseline(TopologySpec::grid(4, 4, 1));
    grid_cfg.sim = quick(4, 1_000);
    let grid = run_fabric(grid_cfg, mk_flows());
    let mut torus_cfg = FabricConfig::baseline(TopologySpec::torus(4, 4, 1));
    torus_cfg.sim = quick(4, 1_000);
    let torus = run_fabric(torus_cfg, mk_flows());
    assert!(grid.all_flows_complete() && torus.all_flows_complete());
    let g = grid.metrics.summary().packet_latency.p50;
    let t = torus.metrics.summary().packet_latency.p50;
    assert!(
        t < g,
        "torus corner-to-corner p50 ({t}) must beat the grid ({g})"
    );
}

#[test]
fn metrics_are_internally_consistent() {
    let flows = MapReduceShuffle::all_to_all(4, Bytes::from_kib(8)).generate(&mut DetRng::new(5));
    let mut cfg = FabricConfig::adaptive(TopologySpec::ring(4, 2));
    cfg.sim = quick(5, 1_000);
    let fabric = run_fabric(cfg, flows);
    let s = fabric.metrics.summary();
    assert_eq!(s.completed_flows, 12);
    assert_eq!(s.delivered_bytes, 12 * 8 * 1024);
    assert!(s.delivered_packets >= 12, "at least one packet per flow");
    assert!(s.packet_latency.count >= s.delivered_packets);
    assert!(s.flow_completion_max_us >= s.flow_completion_mean_us);
    assert!(s.job_completion_us.unwrap() >= s.flow_completion_max_us);
}
