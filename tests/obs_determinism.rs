//! The contract of the instrumentation layer: turning observability **on**
//! changes nothing observable about the simulation. Every export surface —
//! scenario-matrix CSV/JSON, the sharded engine's metrics summary, the
//! sweep orchestrator's report file set and store records — must be
//! byte-identical with spans, metrics and the window profiler enabled vs
//! fully disabled. Wall-clock telemetry lives in perf artifacts only; it
//! can never leak into a job key, a store record, or a golden export.

use rackfabric::prelude::TopologySpec;
use rackfabric::shard::{ShardedConfig, ShardedFabric};
use rackfabric_obs::prelude::*;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sweep::prelude::*;
use std::path::PathBuf;

/// A small controller × load matrix exercising both engines' export paths.
fn matrix() -> Matrix {
    let base = ScenarioSpec::new(
        "obs-determinism",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(2)),
    )
    .horizon(SimTime::from_millis(20))
    .shards(3);
    Matrix::new(base)
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
        .replicates(2)
        .master_seed(515)
}

fn tmp_store(tag: &str) -> (PathBuf, ResultStore) {
    let dir = std::env::temp_dir().join(format!("rackfabric-obs-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), ResultStore::open(&dir).unwrap())
}

#[test]
fn traced_runner_exports_identical_bytes() {
    let plain = Runner::single_threaded().run(&matrix());
    assert_eq!(plain.failed_jobs(), 0);

    let observer = Observer::enabled();
    let traced = Runner::single_threaded()
        .with_observer(observer.clone())
        .run(&matrix());

    assert_eq!(plain.to_csv(), traced.to_csv(), "CSV export moved");
    assert_eq!(plain.to_json(), traced.to_json(), "JSON export moved");
    // The instrumentation was genuinely live, not silently disabled.
    let sink = observer.trace().expect("tracing enabled");
    assert!(!sink.is_empty(), "no spans recorded");
}

#[test]
fn profiled_sharded_engine_computes_identical_results() {
    let run = |instrument: bool| {
        let spec = ScenarioSpec::new(
            "obs-shard",
            TopologySpec::grid(3, 3, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .seed(99)
        .horizon(SimTime::from_millis(20));
        let flows = spec.build_flows();
        let mut config = ShardedConfig::new(spec.to_fabric_config(), 4);
        config.workers = 2;
        if instrument {
            config.profile = true;
            config.observer = Observer::enabled();
        }
        ShardedFabric::new(config, flows).run()
    };
    let plain = run(false);
    let profiled = run(true);

    assert!(plain.all_flows_complete);
    assert_eq!(plain.metrics.summary(), profiled.metrics.summary());
    assert_eq!(plain.events_processed, profiled.events_processed);
    assert_eq!(plain.windows, profiled.windows);
    assert_eq!(plain.syncs, profiled.syncs);

    // The profile exists exactly when asked for, and accounts for every
    // event the engine processed.
    assert!(plain.profile.is_none());
    let profile = profiled.profile.expect("profiling enabled");
    assert_eq!(
        profile.shard_events().iter().sum::<u64>(),
        profiled.events_processed
    );
    assert_eq!(profile.windows, profiled.windows);
}

#[test]
fn observed_sweep_reproduces_reports_and_store_records() {
    let (plain_dir, plain_store) = tmp_store("plain");
    let (observed_dir, observed_store) = tmp_store("observed");
    let runner = Runner::new(2);

    let plain = Sweep::new(matrix()).run(&plain_store, &runner).unwrap();

    let observer = Observer::enabled();
    let observed_runner = Runner::new(2).with_observer(observer.clone());
    let observed = Sweep::new(matrix())
        .observed(observer.clone())
        .run(&observed_store, &observed_runner)
        .unwrap();
    // flush_stats writes the stats.json sidecar; it must not perturb the
    // record set either.
    observed_store.flush_stats().unwrap();

    assert_eq!(plain.executed, observed.executed);
    assert_eq!(plain.cached, observed.cached);
    assert_eq!(
        render_files("obs-determinism", &plain),
        render_files("obs-determinism", &observed),
        "report file set diverged under instrumentation"
    );

    // Store records byte-identical: same file names, same bytes.
    let records = |dir: &PathBuf| -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        for shard in std::fs::read_dir(dir.join("objects")).unwrap() {
            let shard = shard.unwrap();
            for file in std::fs::read_dir(shard.path()).unwrap() {
                let file = file.unwrap();
                out.push((
                    file.file_name().to_string_lossy().into_owned(),
                    std::fs::read(file.path()).unwrap(),
                ));
            }
        }
        out.sort();
        out
    };
    assert_eq!(
        records(&plain_dir),
        records(&observed_dir),
        "store records diverged under instrumentation"
    );
    assert_eq!(plain_store.len(), observed_store.len());

    // And the observed run really did count its store traffic.
    let stats = observed_store.read_stats();
    assert_eq!(stats.puts, observed.executed as u64);
    assert_eq!(stats.misses, observed.total_jobs() as u64);

    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&observed_dir);
}
