//! Determinism of the scenario-matrix engine (the acceptance criterion of
//! the `rackfabric-scenario` subsystem): the same matrix must produce
//! bit-identical aggregate statistics run-to-run and regardless of how many
//! runner threads execute it — including a ≥64-job sweep driven by a single
//! `Runner::run()` call.

use rackfabric::prelude::TopologySpec;
use rackfabric_phy::FecMode;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;

/// 4 rack sizes × 4 loads × 4 seeds = 64 jobs in 16 cells.
fn sweep_matrix() -> Matrix {
    sweep_matrix_on(SchedulerKind::Calendar)
}

fn sweep_matrix_on(scheduler: SchedulerKind) -> Matrix {
    let base = ScenarioSpec::new(
        "determinism-sweep",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(2)),
    )
    .horizon(SimTime::from_millis(30))
    .scheduler(scheduler);
    Matrix::new(base)
        .axis(
            "racks",
            vec![
                AxisValue::Topology(TopologySpec::grid(2, 2, 2)),
                AxisValue::Topology(TopologySpec::grid(2, 3, 2)),
                AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
                AxisValue::Topology(TopologySpec::grid(3, 4, 2)),
            ],
        )
        .axis(
            "load",
            vec![
                AxisValue::Load(0.25),
                AxisValue::Load(0.5),
                AxisValue::Load(1.0),
                AxisValue::Load(2.0),
            ],
        )
        .replicates(4)
        .master_seed(2024)
}

#[test]
fn matrix_of_64_jobs_runs_to_completion_in_parallel() {
    let matrix = sweep_matrix();
    assert_eq!(matrix.cell_count(), 16);
    assert_eq!(matrix.job_count(), 64);
    let result = Runner::new(0).run(&matrix); // one worker per core
    assert_eq!(result.jobs.len(), 64);
    assert_eq!(result.cells.len(), 16);
    assert_eq!(result.failed_jobs(), 0);
    for cell in &result.cells {
        assert_eq!(cell.runs, 4);
        assert_eq!(
            cell.completed_runs, 4,
            "cell {:?} left flows incomplete",
            cell.labels
        );
        assert!(cell.packet_latency.count > 0);
        assert!(cell.packet_latency.p999 >= cell.packet_latency.p50);
        assert!(cell.delivered_bytes > 0);
    }
    // Larger racks at equal load must deliver more shuffle bytes.
    let bytes_small = result.cells[0].delivered_bytes; // 2x2 grid
    let bytes_large = result.cells[12].delivered_bytes; // 3x4 grid
    assert!(bytes_large > bytes_small);
}

#[test]
fn one_thread_and_n_threads_agree_bit_for_bit() {
    let matrix = sweep_matrix();
    let serial = Runner::single_threaded().run(&matrix);
    let parallel = Runner::new(8).run(&matrix);

    // Aggregate stats are compared over their full rendered form, so every
    // float, counter and label participates in the comparison.
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.jobs_csv(), parallel.jobs_csv());

    // And per-job summaries agree structurally, not just textually.
    for (a, b) in serial.jobs.iter().zip(&parallel.jobs) {
        match (&a.outcome, &b.outcome) {
            (JobOutcome::Completed(x), JobOutcome::Completed(y)) => {
                assert_eq!(x.summary, y.summary, "job {} diverged", a.job.index);
            }
            _ => panic!("job {} did not complete in both runs", a.job.index),
        }
    }
}

/// The hot-path acceptance criterion: the calendar-queue engine and the
/// reference heap engine must render **byte-identical** CSV/JSON matrix
/// exports, across thread counts. Every float, histogram percentile and
/// counter participates via the textual comparison.
#[test]
fn heap_and_calendar_schedulers_export_identical_bytes() {
    let calendar = Runner::new(4).run(&sweep_matrix_on(SchedulerKind::Calendar));
    let heap = Runner::single_threaded().run(&sweep_matrix_on(SchedulerKind::Heap));
    assert_eq!(calendar.to_csv(), heap.to_csv());
    assert_eq!(calendar.to_json(), heap.to_json());
    assert_eq!(calendar.jobs_csv(), heap.jobs_csv());
    // Event counts are part of the determinism contract too.
    for (a, b) in calendar.jobs.iter().zip(&heap.jobs) {
        match (&a.outcome, &b.outcome) {
            (JobOutcome::Completed(x), JobOutcome::Completed(y)) => {
                assert_eq!(
                    x.events_processed, y.events_processed,
                    "job {} processed different event counts across schedulers",
                    a.job.index
                );
            }
            _ => panic!("job {} did not complete on both schedulers", a.job.index),
        }
    }
}

#[test]
fn rerunning_the_same_matrix_is_reproducible() {
    let first = Runner::new(4).run(&sweep_matrix());
    let second = Runner::new(4).run(&sweep_matrix());
    assert_eq!(first.to_csv(), second.to_csv());
    assert_eq!(first.to_json(), second.to_json());
}

#[test]
fn phy_and_policy_axes_change_results_deterministically() {
    let base = ScenarioSpec::new(
        "phy-axis",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(4)),
    )
    .horizon(SimTime::from_millis(30));
    let matrix = Matrix::new(base)
        .axis(
            "fec",
            vec![
                AxisValue::Fec(FecSetting::Fixed(FecMode::None)),
                AxisValue::Fec(FecSetting::Fixed(FecMode::Rs544)),
            ],
        )
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .replicates(2);
    let a = Runner::single_threaded().run(&matrix);
    let b = Runner::new(4).run(&matrix);
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.failed_jobs(), 0);
    // RS(544,514) adds per-hop FEC latency over no-FEC at the same seed.
    let p50 = |cells: &[CellSummary], i: usize| cells[i].packet_latency.p50;
    assert!(
        p50(&a.cells, 2) > p50(&a.cells, 0),
        "rs544 baseline p50 ({}) should exceed no-fec baseline p50 ({})",
        p50(&a.cells, 2),
        p50(&a.cells, 0)
    );
}
