//! Acceptance gate of the sharded multi-rack engine: sweeps run with 1 shard
//! and with N shards must export **byte-identical** CSV/JSON — the same
//! property the scenario runner guarantees for 1-vs-N threads, lifted to the
//! engine's own parallel decomposition. Every float, percentile, counter and
//! label participates via the textual comparison.

use rackfabric::prelude::TopologySpec;
use rackfabric::shard::{run_sharded, ShardedConfig};
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;

/// A small controller × load sweep on the sharded engine with `shards` rack
/// groups per job.
fn sharded_matrix(shards: usize) -> Matrix {
    let base = ScenarioSpec::new(
        "shard-determinism",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(2)),
    )
    .horizon(SimTime::from_millis(20))
    .shards(shards);
    Matrix::new(base)
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
        .replicates(2)
        .master_seed(7781)
}

#[test]
fn one_shard_and_n_shards_export_identical_bytes() {
    let one = Runner::single_threaded().run(&sharded_matrix(1));
    assert_eq!(one.failed_jobs(), 0);
    for shards in [2, 3, 9] {
        let many = Runner::single_threaded().run(&sharded_matrix(shards));
        assert_eq!(
            one.to_csv(),
            many.to_csv(),
            "{shards}-shard sweep diverged from the 1-shard reference (CSV)"
        );
        assert_eq!(
            one.to_json(),
            many.to_json(),
            "{shards}-shard sweep diverged from the 1-shard reference (JSON)"
        );
        // Engine event counts are part of the contract: the window planner
        // derives from shard-count-independent quantities.
        for (a, b) in one.jobs.iter().zip(&many.jobs) {
            match (&a.outcome, &b.outcome) {
                (JobOutcome::Completed(x), JobOutcome::Completed(y)) => {
                    assert_eq!(
                        x.events_processed, y.events_processed,
                        "job {} processed different event counts at {shards} shards",
                        a.job.index
                    );
                    assert_eq!(x.summary, y.summary, "job {} diverged", a.job.index);
                }
                _ => panic!("job {} did not complete in both runs", a.job.index),
            }
        }
    }
}

#[test]
fn shards_axis_cross_checks_within_one_matrix() {
    // The shards axis expands 1-shard and N-shard cells side by side from
    // the same base; their per-replicate seeds differ (each cell draws its
    // own), so equality is checked via the dedicated 1-vs-N sweeps above.
    // Here the axis itself must expand, label and run cleanly.
    let base = ScenarioSpec::new(
        "shards-axis",
        TopologySpec::grid(2, 2, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(1)),
    )
    .horizon(SimTime::from_millis(10));
    let matrix = Matrix::new(base).axis(
        "shards",
        vec![
            AxisValue::Shards(1),
            AxisValue::Shards(2),
            AxisValue::Shards(4),
        ],
    );
    let result = Runner::single_threaded().run(&matrix);
    assert_eq!(result.failed_jobs(), 0);
    assert_eq!(result.cells.len(), 3);
    let labels: Vec<&str> = result
        .cells
        .iter()
        .map(|c| c.labels[0].1.as_str())
        .collect();
    assert_eq!(labels, vec!["1", "2", "4"]);
    for cell in &result.cells {
        assert_eq!(cell.completed_runs, 1, "cell {:?}", cell.labels);
        assert!(cell.delivered_bytes > 0);
    }
}

#[test]
fn worker_thread_count_does_not_change_sharded_results() {
    let run = |workers: usize| {
        let flows = ScenarioSpec::new(
            "workers",
            TopologySpec::grid(3, 3, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .seed(42)
        .build_flows();
        let spec = ScenarioSpec::new(
            "workers",
            TopologySpec::grid(3, 3, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .seed(42)
        .horizon(SimTime::from_millis(20));
        let mut config = ShardedConfig::new(spec.to_fabric_config(), 3);
        config.workers = workers;
        run_sharded(config, flows)
    };
    let serial = run(1);
    let threaded = run(3);
    assert!(serial.all_flows_complete);
    assert_eq!(serial.events_processed, threaded.events_processed);
    assert_eq!(serial.windows, threaded.windows);
    assert_eq!(serial.metrics.summary(), threaded.metrics.summary());
}

/// Stress gate for the phase-counted window executor: deterministic
/// wall-clock jitter (injected sleeps/yields keyed off `(seed, worker,
/// round)`) shuffles the real-time interleaving of workers — early
/// advances, inbox arrival order, seal timing — across shard and worker
/// counts, and every run must still match the unstaggered 1-worker
/// reference exactly. Wall time is the only thing stagger may move.
#[test]
fn staggered_workers_do_not_change_sharded_results() {
    let run = |shards: usize, workers: usize, stagger: Option<u64>| {
        let spec = ScenarioSpec::new(
            "stagger",
            TopologySpec::grid(3, 3, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(2)),
        )
        .seed(42)
        .horizon(SimTime::from_millis(20));
        let flows = spec.build_flows();
        let mut config = ShardedConfig::new(spec.to_fabric_config(), shards);
        config.workers = workers;
        config.stagger = stagger;
        run_sharded(config, flows)
    };
    let reference = run(1, 1, None);
    assert!(reference.all_flows_complete);
    for (shards, workers) in [(3, 2), (3, 3), (2, 2)] {
        for seed in [1u64, 77, 4242] {
            let chaotic = run(shards, workers, Some(seed));
            assert_eq!(
                reference.events_processed, chaotic.events_processed,
                "stagger seed {seed} at {shards} shards / {workers} workers \
                 changed the event count"
            );
            assert_eq!(
                reference.windows, chaotic.windows,
                "stagger seed {seed} at {shards} shards / {workers} workers \
                 changed the window count"
            );
            assert_eq!(
                reference.metrics.summary(),
                chaotic.metrics.summary(),
                "stagger seed {seed} at {shards} shards / {workers} workers \
                 changed the results"
            );
        }
    }
}

/// A reconfiguration fence spanning shards: the grid→torus escalation runs
/// at a sync point, fences every link in **every** shard, and the upgraded
/// fabric must behave identically for 1 and 4 shards.
#[test]
fn topology_upgrade_is_shard_count_independent() {
    let run = |shards: usize| {
        let spec = ScenarioSpec::new(
            "upgrade",
            TopologySpec::grid(4, 4, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(48)),
        )
        .upgrade(TopologySpec::torus(4, 4, 1))
        .seed(4)
        .horizon(SimTime::from_millis(120));
        let flows = spec.build_flows();
        let mut fabric_config = spec.to_fabric_config();
        fabric_config.crc.epoch = SimDuration::from_micros(20);
        run_sharded(ShardedConfig::new(fabric_config, shards), flows)
    };
    let one = run(1);
    let four = run(4);
    assert!(one.all_flows_complete, "1-shard upgrade run must finish");
    assert_eq!(
        one.metrics.topology_reconfigurations, 1,
        "sustained shuffle pressure should trigger exactly one upgrade"
    );
    assert_eq!(four.shards, 4);
    assert_eq!(one.metrics.summary(), four.metrics.summary());
    assert_eq!(one.events_processed, four.events_processed);
    assert_eq!(one.syncs, four.syncs);
}

/// The dragonfly acceptance gate: groups are racks, so sharding by group
/// cuts only global links, and the three routing policies (minimal /
/// Valiant / UGAL-style adaptive) must export byte-identically at every
/// shard count. Valiant and adaptive are per-flow and cost-aware — the
/// strongest test of the shared rack table and the broadcast cost map.
fn dragonfly_matrix(shards: usize) -> Matrix {
    use rackfabric_topo::routing::RoutingAlgorithm;
    let base = ScenarioSpec::new(
        "dragonfly-shard-determinism",
        TopologySpec::dragonfly(3, 2, 2, 1),
        WorkloadSpec::shuffle(Bytes::from_kib(2)),
    )
    .controller(ControllerSpec::Baseline)
    .horizon(SimTime::from_millis(20))
    .shards(shards);
    Matrix::new(base)
        .axis(
            "routing",
            vec![
                AxisValue::Routing(RoutingAlgorithm::ShortestHop),
                AxisValue::Routing(RoutingAlgorithm::Valiant),
                AxisValue::Routing(RoutingAlgorithm::Adaptive),
            ],
        )
        .replicates(2)
        .master_seed(2718)
}

#[test]
fn dragonfly_routing_policies_are_shard_count_independent() {
    let one = Runner::single_threaded().run(&dragonfly_matrix(1));
    assert_eq!(one.failed_jobs(), 0);
    // 3 = one shard per dragonfly group (every cut is a global link);
    // 2 leaves one shard holding two groups.
    for shards in [2, 3] {
        let many = Runner::single_threaded().run(&dragonfly_matrix(shards));
        assert_eq!(
            one.to_csv(),
            many.to_csv(),
            "{shards}-shard dragonfly sweep diverged from the 1-shard reference (CSV)"
        );
        assert_eq!(
            one.to_json(),
            many.to_json(),
            "{shards}-shard dragonfly sweep diverged from the 1-shard reference (JSON)"
        );
    }
    for cell in &one.cells {
        assert_eq!(cell.completed_runs, 2, "cell {:?}", cell.labels);
    }
}

/// An upgrade fence on a **global** (inter-group) link under sharding: the
/// escalation target adds one extra global link between two groups, so the
/// fence lands on a link that is a partition cut when sharded by group. The
/// reconfiguration must fire exactly once and the run must match the
/// 1-shard reference at every shard count.
#[test]
fn dragonfly_upgrade_fence_on_a_global_link_is_shard_count_independent() {
    use rackfabric_topo::spec::{EdgeSpec, LinkClass, DEFAULT_INTER_RACK_LENGTH};
    // Two lanes per link: the added global edge has no relane donor in the
    // upgrade diff, so `reconfigure::plan` must split a lane off an existing
    // link, which needs at least one link wider than the edge being added.
    let source = TopologySpec::dragonfly(3, 2, 2, 2);
    // Add-only escalation: the same dragonfly plus a second global link
    // between group 0 (router 0) and group 2 (router 1) — a pair no
    // baseline global link connects.
    let mut target = source.clone();
    let media = target.edges[0].media;
    target.edges.push(EdgeSpec {
        a: rackfabric_topo::NodeId(0),
        b: rackfabric_topo::NodeId(13),
        lanes: 1,
        length: DEFAULT_INTER_RACK_LENGTH,
        media,
        class: LinkClass::InterRack,
    });
    target.name = format!("{}+extra-global", source.name);
    let run = |shards: usize| {
        let spec = ScenarioSpec::new(
            "dragonfly-upgrade",
            source.clone(),
            WorkloadSpec::shuffle(Bytes::from_kib(48)),
        )
        .upgrade(target.clone())
        .seed(4)
        .horizon(SimTime::from_millis(200));
        let flows = spec.build_flows();
        let mut fabric_config = spec.to_fabric_config();
        fabric_config.crc.epoch = SimDuration::from_micros(20);
        run_sharded(ShardedConfig::new(fabric_config, shards), flows)
    };
    let one = run(1);
    assert!(one.all_flows_complete, "1-shard upgrade run must finish");
    assert_eq!(
        one.metrics.topology_reconfigurations, 1,
        "sustained shuffle pressure should trigger exactly one upgrade"
    );
    for shards in [2, 3] {
        let many = run(shards);
        assert_eq!(many.shards, shards);
        assert_eq!(one.metrics.summary(), many.metrics.summary());
        assert_eq!(one.events_processed, many.events_processed);
        assert_eq!(one.syncs, many.syncs);
    }
}

#[test]
fn rerunning_the_same_sharded_matrix_is_reproducible() {
    let first = Runner::single_threaded().run(&sharded_matrix(3));
    let second = Runner::single_threaded().run(&sharded_matrix(3));
    assert_eq!(first.to_csv(), second.to_csv());
    assert_eq!(first.to_json(), second.to_json());
}
