//! Property-based tests over the public API: invariants that must hold for
//! arbitrary (bounded) topologies, workloads and PLP command sequences.

use proptest::prelude::*;
use rackfabric::breakeven::{evaluate, min_flow_size, BreakEvenInput};
use rackfabric::prelude::*;
use rackfabric_phy::{PhyState, PlpCommand, PlpExecutor};
use rackfabric_sim::prelude::*;
use rackfabric_sim::units::Power;
use rackfabric_topo::routing::shortest_path;
use rackfabric_topo::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid and torus topologies of any size are connected, and the torus
    /// never has a larger diameter than the grid of the same dimensions.
    #[test]
    fn grids_and_tori_are_connected(rows in 2usize..6, cols in 2usize..6, lanes in 1usize..4) {
        let mut phy_g = PhyState::new();
        let grid = TopologySpec::grid(rows, cols, lanes).instantiate(&mut phy_g, BitRate::from_gbps(25));
        let mut phy_t = PhyState::new();
        let torus = TopologySpec::torus(rows, cols, lanes).instantiate(&mut phy_t, BitRate::from_gbps(25));
        prop_assert!(grid.is_connected());
        prop_assert!(torus.is_connected());
        prop_assert!(torus.diameter().unwrap() <= grid.diameter().unwrap());
    }

    /// Shortest-path routes on a grid have the Manhattan-distance hop count
    /// and never repeat a node.
    #[test]
    fn grid_routes_are_minimal_and_loop_free(
        rows in 2usize..6,
        cols in 2usize..6,
        src in 0usize..36,
        dst in 0usize..36,
    ) {
        let n = rows * cols;
        let src = src % n;
        let dst = dst % n;
        let spec = TopologySpec::grid(rows, cols, 1);
        let mut phy = PhyState::new();
        let topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        let route = shortest_path(&topo, NodeId(src as u32), NodeId(dst as u32)).unwrap();
        let (sr, sc) = (src / cols, src % cols);
        let (dr, dc) = (dst / cols, dst % cols);
        let manhattan = sr.abs_diff(dr) + sc.abs_diff(dc);
        prop_assert_eq!(route.hops(), manhattan);
        let mut nodes = route.nodes.clone();
        nodes.sort();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), route.nodes.len(), "route must not revisit a node");
    }

    /// The break-even threshold really is the break-even point: flows above
    /// it benefit from reconfiguring, flows well below it do not.
    #[test]
    fn breakeven_threshold_separates_worthwhile_flows(
        before_g in 10u64..100,
        uplift in 2u64..8,
        reconfig_us in 1u64..10_000,
    ) {
        let input = BreakEvenInput {
            before: BitRate::from_gbps(before_g),
            after: BitRate::from_gbps(before_g * uplift),
            reconfig_time: SimDuration::from_micros(reconfig_us),
        };
        let threshold = min_flow_size(&input).unwrap();
        let above = Bytes::new(threshold.as_u64().saturating_mul(2).max(threshold.as_u64() + 1));
        let below = Bytes::new((threshold.as_u64() / 2).max(1));
        prop_assert!(evaluate(above, &input).worth_it);
        prop_assert!(!evaluate(below, &input).worth_it);
    }

    /// Lane power gating never changes the number of lanes physically
    /// attached to a link, and capacity scales monotonically with the number
    /// of active lanes.
    #[test]
    fn lane_gating_preserves_lanes_and_orders_capacity(lanes in 1usize..8, active in 0usize..8) {
        let mut phy = PhyState::new();
        let id = phy.add_link(0, 1, rackfabric_phy::media::Media::optical_fiber(),
            rackfabric_sim::units::Length::from_m(2), lanes, BitRate::from_gbps(25));
        let executor = PlpExecutor::default();
        let command = PlpCommand::SetActiveLanes { link: id, lanes: active.min(lanes) };
        executor.execute(&mut phy, &command).unwrap();
        let link = phy.link(id).unwrap();
        prop_assert_eq!(link.total_lanes(), lanes);
        prop_assert_eq!(link.active_lanes(), active.min(lanes));
        prop_assert_eq!(link.raw_capacity(), BitRate::from_gbps(25) * active.min(lanes) as u64);
    }

    /// Every policy's thresholds stay in range and the price book built from
    /// any utilization level gives strictly positive, finite costs for up
    /// links.
    #[test]
    fn price_books_are_well_formed(util in 0.0f64..2.0, links in 1usize..12) {
        let mut phy = PhyState::new();
        for i in 0..links {
            phy.add_link(i as u32, (i + 1) as u32, rackfabric_phy::media::Media::optical_fiber(),
                rackfabric_sim::units::Length::from_m(2), 2, BitRate::from_gbps(25));
        }
        let utilization: std::collections::HashMap<_, _> =
            phy.link_ids().into_iter().map(|id| (id, util)).collect();
        let report = phy.telemetry_report(SimTime::from_micros(1), &utilization,
            &Default::default(), &Default::default());
        let crc = ClosedRingControl::new(CrcConfig {
            policy: CrcPolicy::Hybrid { budget: Power::from_kilowatts(2) },
            ..Default::default()
        });
        let book = crc.price(&report);
        let costs = book.as_cost_map();
        prop_assert_eq!(costs.len(), links);
        for (_, c) in costs {
            prop_assert!(c.is_finite());
            prop_assert!(c > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end conservation: for any small workload on a small fabric,
    /// every injected byte is eventually delivered (the fabric retries drops)
    /// and the job completion time is at least the slowest flow's completion
    /// time.
    #[test]
    fn fabric_delivers_every_byte(
        seed in 0u64..1000,
        nodes in 2usize..5,
        kib in 1u64..32,
    ) {
        use rackfabric_workload::{MapReduceShuffle, Workload};
        let n = nodes * nodes;
        let flows = MapReduceShuffle::all_to_all(n, Bytes::from_kib(kib))
            .generate(&mut DetRng::new(seed));
        let expected: u64 = flows.iter().map(|f| f.size.as_u64()).sum();
        let mut cfg = FabricConfig::adaptive(TopologySpec::grid(nodes, nodes, 2));
        cfg.sim = SimConfig::with_seed(seed).horizon(SimTime::from_millis(2_000));
        let fabric = run_fabric(cfg, flows);
        prop_assert!(fabric.all_flows_complete());
        prop_assert_eq!(fabric.metrics.delivered_bytes, expected);
        let s = fabric.metrics.summary();
        prop_assert!(s.job_completion_us.unwrap() + 1e-6 >= s.flow_completion_max_us);
    }
}
