//! Golden-export regression suite for the paper-figure campaigns.
//!
//! Every figure of the paper (e1–e9, plus the repo's own e10 sharded-scale
//! and e11 fabric-vs-routing figures) is a declarative campaign in
//! `rackfabric_bench::figures` whose CSV export is byte-deterministic. This
//! suite runs the full set at `--tiny` scale end to end through the
//! command-layer `Executor` and pins it four ways:
//!
//! * each export must match its checked-in `golden/tiny/*.csv` **byte for
//!   byte** (an intentional result change regenerates goldens via
//!   `cargo run -p rackfabric-bench --bin sweep -- --figures --tiny
//!   --update-golden`),
//! * a second run against the same store must execute **zero** jobs and
//!   reproduce identical bytes (the resume gate),
//! * a campaign interrupted mid-flight by `max_new_jobs` must recover from
//!   its journal to the exact same golden bytes, re-executing nothing that
//!   was already journaled and stored (the crash-recovery gate),
//! * a perturbed export must *fail* the comparison with a readable
//!   per-column diff (the drift detector itself is tested).

use rackfabric_bench::figures::{self, FigureOptions, FigureResolver, Scale};
use rackfabric_cmd::command::Command;
use rackfabric_cmd::Executor;
use rackfabric_daemon::prelude::*;
use rackfabric_scenario::runner::Runner;
use rackfabric_sweep::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn golden_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rackfabric-paper-figures-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn tiny_figures_match_goldens_and_resume_to_zero_jobs() {
    let dir = tmp_dir("e2e");
    let exec = Executor::new(ResultStore::open(&dir).unwrap(), Runner::new(0));

    // Cold: every simulation-backed figure executes its campaign.
    let cold = figures::run_figures(Scale::Tiny, &exec).unwrap();
    assert_eq!(cold.len(), 11, "e1..e11");
    let cold_executed: usize = cold.iter().map(|f| f.executed).sum();
    assert!(cold_executed > 0, "a cold store must execute jobs");
    assert!(cold.iter().all(|f| !f.interrupted));

    // Byte-for-byte against the checked-in goldens.
    let failures = figures::check_goldens(&golden_root(), Scale::Tiny, &cold);
    assert!(
        failures.is_empty(),
        "figure exports drifted from golden/tiny:\n{}",
        failures.join("\n---\n")
    );

    // Warm: the same campaigns against the same store execute nothing and
    // export identical bytes.
    let warm = figures::run_figures(Scale::Tiny, &exec).unwrap();
    let warm_executed: usize = warm.iter().map(|f| f.executed).sum();
    assert_eq!(warm_executed, 0, "a warm store must answer every job");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            c.export,
            w.export,
            "{} must be byte-stable",
            c.export_file()
        );
        assert_eq!(c.export_file(), w.export_file());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_figure_campaign_recovers_from_journal_to_golden_bytes() {
    let dir = tmp_dir("recover");
    let exec = Executor::with_journal(
        ResultStore::open(dir.join("store")).unwrap(),
        Runner::new(0),
        dir.join("journal"),
    )
    .unwrap();

    // Interrupted: the shared fresh-execution allowance runs out inside the
    // figure sequence; every figure still journals its marker.
    let partial = figures::run_figures_with(
        Scale::Tiny,
        &exec,
        &FigureOptions {
            max_new_jobs: Some(6),
            ..FigureOptions::default()
        },
    )
    .unwrap();
    let partial_executed: usize = partial.iter().map(|f| f.executed).sum();
    assert_eq!(partial_executed, 6, "the cap must interrupt the sequence");
    assert!(partial.iter().any(|f| f.interrupted));

    // Recovery replays the journal through the figure table: the 6 stored
    // jobs cost zero executions, the campaign markers complete the rest.
    let stats = exec.recover(&FigureResolver).unwrap();
    assert_eq!(stats.cells_replayed, 0, "stored jobs must not re-execute");
    assert_eq!(stats.cells_already_stored, 6);
    assert!(stats.campaigns_replayed > 0);

    // The recovered store now answers the full set warm, and the exports
    // are the exact golden bytes of an uninterrupted run.
    let recovered = figures::run_figures(Scale::Tiny, &exec).unwrap();
    let executed: usize = recovered.iter().map(|f| f.executed).sum();
    assert_eq!(executed, 0, "recovery must have completed every campaign");
    let failures = figures::check_goldens(&golden_root(), Scale::Tiny, &recovered);
    assert!(
        failures.is_empty(),
        "recovered exports drifted from golden/tiny:\n{}",
        failures.join("\n---\n")
    );

    // A second recovery pass is a no-op: everything journaled is stored.
    let again = exec.recover(&FigureResolver).unwrap();
    assert_eq!(again.cells_replayed, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_cancelled_figure_campaign_recovers_from_journal_to_batch_bytes() {
    // The crash-recovery gate, extended to the daemon path: a figure
    // campaign cancelled mid-flight through `rackfabricd`'s scheduler
    // leaves the same clean journal prefix as a `max_new_jobs`
    // interruption, `Executor::recover` completes it, and the recovered
    // store answers the daemon byte-identically to the batch path.
    let dir = tmp_dir("daemon-recover");
    let exec = Arc::new(
        Executor::with_journal(
            ResultStore::open(dir.join("store")).unwrap(),
            Runner::new(1),
            dir.join("journal"),
        )
        .unwrap(),
    );
    let command = Command::RegenerateFigure {
        id: "e1".to_string(),
        scale: "tiny".to_string(),
        budget: None,
    };

    // Deterministic interruption: the token's fuse trips at the second
    // job boundary (runner threads = 1, so each dispatch chunk is one
    // job) — e1 tiny has 8 jobs, leaving 6 unexecuted.
    let daemon = Daemon::start(
        exec.clone(),
        DaemonConfig {
            workers: 1,
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let token = CancelToken::after_checks(2);
    let id = daemon
        .scheduler()
        .submit_with_token("ci", 0, command.clone(), token)
        .job_id()
        .expect("an empty daemon accepts the submission");
    let mut saw_started = false;
    let cancelled = loop {
        match daemon
            .scheduler()
            .watch(id, saw_started, std::time::Duration::from_secs(120))
            .expect("the fused campaign must end, not hang")
        {
            rackfabric_daemon::sched::Observed::Started => saw_started = true,
            rackfabric_daemon::sched::Observed::Ended(end) => break end,
        }
    };
    assert!(
        matches!(cancelled, JobEnd::Cancelled),
        "the tripped fuse must surface as a cancellation: {cancelled:?}"
    );
    daemon.shutdown();
    assert_eq!(
        exec.store().len(),
        2,
        "the cancelled campaign persisted exactly its clean prefix"
    );

    // Recovery replays the journal: both stored jobs cost nothing, the
    // campaign marker completes the remaining six.
    let stats = exec.recover(&FigureResolver).unwrap();
    assert_eq!(stats.cells_replayed, 0, "stored jobs must not re-execute");
    assert!(stats.campaigns_replayed > 0, "the marker drives completion");
    assert_eq!(exec.store().len(), 8, "e1 tiny resolves 8 jobs");

    // Reference: the batch path against an independent store, queried
    // warm so the payload (executed = 0) is comparable.
    let ref_exec = Executor::new(
        ResultStore::open(dir.join("ref-store")).unwrap(),
        Runner::new(1),
    );
    execute_oneshot(&ref_exec, &command).expect("cold reference run");
    let (ref_cached, ref_line) = execute_oneshot(&ref_exec, &command).unwrap();
    assert!(ref_cached, "the second reference run is warm");

    // The daemon on the recovered store answers warm, byte-identically.
    let daemon = Daemon::start(exec.clone(), DaemonConfig::default()).unwrap();
    let client = Client::new(daemon.addr(), std::time::Duration::from_secs(120));
    let reply = client.submit("ci", 0, command).unwrap();
    assert!(reply.cached, "recovery must have completed the campaign");
    assert_eq!(
        reply.result_json, ref_line,
        "recovered daemon bytes must match an uninterrupted batch run"
    );
    client.shutdown().unwrap();
    daemon.wait();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn perturbed_histogram_bucket_fails_with_a_readable_per_column_diff() {
    // The e9 export carries histogram-derived percentile columns; bump one
    // p99 bucket value by a digit and the golden gate must fail, naming the
    // line and the column.
    let golden = std::fs::read_to_string(golden_root().join("tiny/e9_scenario_matrix.csv"))
        .expect("checked-in golden/tiny/e9_scenario_matrix.csv");
    let mut lines: Vec<String> = golden.lines().map(str::to_string).collect();
    let header: Vec<&str> = lines[0].split(',').collect();
    let p99_col = header
        .iter()
        .position(|&h| h == "latency_p99_ps")
        .expect("cells CSV has a latency_p99_ps column");
    let mut fields: Vec<String> = lines[1].split(',').map(str::to_string).collect();
    fields[p99_col].push('1'); // one histogram bucket drifts
    lines[1] = fields.join(",");
    let perturbed = format!("{}\n", lines.join("\n"));

    let err = figures::compare_export("e9_scenario_matrix.csv", &golden, &perturbed)
        .expect_err("a perturbed export must fail the golden gate");
    assert!(err.contains("line 2"), "diff must name the line: {err}");
    assert!(
        err.contains("column `latency_p99_ps`"),
        "diff must name the column: {err}"
    );
    assert!(err.contains("golden="), "diff must show both values: {err}");

    // The untouched export still passes.
    figures::compare_export("e9_scenario_matrix.csv", &golden, &golden).unwrap();
}

#[test]
fn figure_store_gc_reclaims_nothing_while_campaigns_are_live() {
    // After a full figure run, every record in the store is referenced by
    // some figure: gc against the live set must keep them all.
    let dir = tmp_dir("gc");
    let exec = Executor::new(ResultStore::open(&dir).unwrap(), Runner::new(0));
    let runs = figures::run_figures(Scale::Tiny, &exec).unwrap();
    let live: Vec<JobKey> = figures::live_keys(&runs).into_iter().collect();
    assert_eq!(
        exec.store().len(),
        live.len(),
        "one record per resolved job key"
    );
    let stats = exec.gc(&live).unwrap();
    assert_eq!(stats.removed, 0);
    assert_eq!(stats.kept, live.len());
    let _ = std::fs::remove_dir_all(&dir);
}
