//! Golden-export regression suite for the paper-figure campaigns.
//!
//! Every figure of the paper (e1–e9, plus the repo's own e10 sharded-scale
//! and e11 fabric-vs-routing figures) is a declarative campaign in
//! `rackfabric_bench::figures` whose CSV export is byte-deterministic. This
//! suite runs the full set at `--tiny` scale end to end and pins it three
//! ways:
//!
//! * each export must match its checked-in `golden/tiny/*.csv` **byte for
//!   byte** (an intentional result change regenerates goldens via
//!   `cargo run -p rackfabric-bench --bin sweep -- --figures --tiny
//!   --update-golden`),
//! * a second run against the same store must execute **zero** jobs and
//!   reproduce identical bytes (the resume gate),
//! * a perturbed export must *fail* the comparison with a readable
//!   per-column diff (the drift detector itself is tested).

use rackfabric_bench::figures::{self, Scale};
use rackfabric_scenario::runner::Runner;
use rackfabric_sweep::prelude::*;
use std::path::{Path, PathBuf};

fn golden_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn tmp_store(tag: &str) -> (PathBuf, ResultStore) {
    let dir = std::env::temp_dir().join(format!(
        "rackfabric-paper-figures-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).unwrap();
    (dir, store)
}

#[test]
fn tiny_figures_match_goldens_and_resume_to_zero_jobs() {
    let (dir, store) = tmp_store("e2e");
    let runner = Runner::new(0);

    // Cold: every simulation-backed figure executes its campaign.
    let cold = figures::run_figures(Scale::Tiny, &store, &runner).unwrap();
    assert_eq!(cold.len(), 11, "e1..e11");
    let cold_executed: usize = cold.iter().map(|f| f.executed).sum();
    assert!(cold_executed > 0, "a cold store must execute jobs");

    // Byte-for-byte against the checked-in goldens.
    let failures = figures::check_goldens(&golden_root(), Scale::Tiny, &cold);
    assert!(
        failures.is_empty(),
        "figure exports drifted from golden/tiny:\n{}",
        failures.join("\n---\n")
    );

    // Warm: the same campaigns against the same store execute nothing and
    // export identical bytes.
    let warm = figures::run_figures(Scale::Tiny, &store, &runner).unwrap();
    let warm_executed: usize = warm.iter().map(|f| f.executed).sum();
    assert_eq!(warm_executed, 0, "a warm store must answer every job");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            c.export,
            w.export,
            "{} must be byte-stable",
            c.export_file()
        );
        assert_eq!(c.export_file(), w.export_file());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn perturbed_histogram_bucket_fails_with_a_readable_per_column_diff() {
    // The e9 export carries histogram-derived percentile columns; bump one
    // p99 bucket value by a digit and the golden gate must fail, naming the
    // line and the column.
    let golden = std::fs::read_to_string(golden_root().join("tiny/e9_scenario_matrix.csv"))
        .expect("checked-in golden/tiny/e9_scenario_matrix.csv");
    let mut lines: Vec<String> = golden.lines().map(str::to_string).collect();
    let header: Vec<&str> = lines[0].split(',').collect();
    let p99_col = header
        .iter()
        .position(|&h| h == "latency_p99_ps")
        .expect("cells CSV has a latency_p99_ps column");
    let mut fields: Vec<String> = lines[1].split(',').map(str::to_string).collect();
    fields[p99_col].push('1'); // one histogram bucket drifts
    lines[1] = fields.join(",");
    let perturbed = format!("{}\n", lines.join("\n"));

    let err = figures::compare_export("e9_scenario_matrix.csv", &golden, &perturbed)
        .expect_err("a perturbed export must fail the golden gate");
    assert!(err.contains("line 2"), "diff must name the line: {err}");
    assert!(
        err.contains("column `latency_p99_ps`"),
        "diff must name the column: {err}"
    );
    assert!(err.contains("golden="), "diff must show both values: {err}");

    // The untouched export still passes.
    figures::compare_export("e9_scenario_matrix.csv", &golden, &golden).unwrap();
}

#[test]
fn figure_store_gc_reclaims_nothing_while_campaigns_are_live() {
    // After a full figure run, every record in the store is referenced by
    // some figure: gc against the live set must keep them all.
    let (dir, store) = tmp_store("gc");
    let runner = Runner::new(0);
    let runs = figures::run_figures(Scale::Tiny, &store, &runner).unwrap();
    let live = figures::live_keys(&runs);
    assert_eq!(store.len(), live.len(), "one record per resolved job key");
    let stats = store.gc(live.iter()).unwrap();
    assert_eq!(stats.removed, 0);
    assert_eq!(stats.kept, live.len());
    let _ = std::fs::remove_dir_all(&dir);
}
