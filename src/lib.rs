//! Workspace-level umbrella for the `rackfabric` reproduction.
//!
//! This crate only exists to host the repository's runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`); the library
//! surface is re-exported from the member crates. See `README.md` for the
//! project overview and `DESIGN.md` for the system inventory.

pub use rackfabric;
pub use rackfabric_netfpga as netfpga;
pub use rackfabric_phy as phy;
pub use rackfabric_scenario as scenario;
pub use rackfabric_sim as sim;
pub use rackfabric_sweep as sweep;
pub use rackfabric_switch as switch;
pub use rackfabric_topo as topo;
pub use rackfabric_workload as workload;
