//! Scenario-matrix sweep: rack size × offered load × seeds, baseline vs
//! adaptive, executed in parallel by one `Runner::run()` call and printed as
//! CSV (one row per cell, tail latencies merged across seeds).
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```

use rackfabric::prelude::TopologySpec;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;

fn main() {
    let base = ScenarioSpec::new(
        "rack-load-sweep",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(8)),
    )
    .horizon(SimTime::from_millis(200));

    let matrix = Matrix::new(base)
        .axis(
            "racks",
            vec![
                AxisValue::Topology(TopologySpec::grid(2, 2, 2)),
                AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
                AxisValue::Topology(TopologySpec::grid(4, 4, 2)),
            ],
        )
        .axis(
            "load",
            vec![
                AxisValue::Load(0.25),
                AxisValue::Load(0.5),
                AxisValue::Load(1.0),
                AxisValue::Load(2.0),
            ],
        )
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .replicates(3)
        .master_seed(7);

    eprintln!(
        "sweeping {} cells / {} jobs on {} threads...",
        matrix.cell_count(),
        matrix.job_count(),
        Runner::new(0).threads()
    );
    let result = Runner::new(0).run(&matrix);
    eprintln!(
        "done: {} jobs, {} failed",
        result.jobs.len(),
        result.failed_jobs()
    );
    print!("{}", result.to_csv());
}
