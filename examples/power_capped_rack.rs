//! Power-capped operation: a lightly loaded rack whose Closed Ring Control
//! runs the power-cap policy, shedding idle lanes so the interconnect stays
//! within its budget, compared with a latency-only policy that keeps every
//! lane hot.
//!
//! ```sh
//! cargo run --release --example power_capped_rack
//! ```

use rackfabric::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sim::units::Power;
use rackfabric_workload::{ArrivalProcess, FlowSizeDistribution, UniformWorkload, Workload};

fn run_with_policy(policy: CrcPolicy, label: &str) {
    let spec = TopologySpec::grid(4, 4, 4);
    let flows = UniformWorkload {
        nodes: 16,
        flows: 60,
        sizes: FlowSizeDistribution::Fixed(Bytes::from_kib(32)),
        arrivals: ArrivalProcess::Poisson {
            mean_interarrival: SimDuration::from_micros(20),
            start: SimTime::ZERO,
        },
    }
    .generate(&mut DetRng::new(3));

    let mut config = FabricConfig::adaptive(spec);
    config.crc.policy = policy;
    config.crc.epoch = SimDuration::from_micros(50);
    config.stop_when_done = false; // keep sampling power after the flows drain
    config.sim = SimConfig::with_seed(3).horizon(SimTime::from_millis(5));
    let fabric = run_fabric(config, flows);
    let s = fabric.metrics.summary();

    println!("--- {label} ---");
    println!("  mean power   : {:.1} W", s.mean_power_w);
    println!("  peak power   : {:.1} W", s.max_power_w);
    println!("  p99 latency  : {:.2} us", s.packet_latency.p99 / 1e6);
    println!("  PLP commands : {}", s.plp_commands);
    println!("  flows done   : {}", s.completed_flows);
}

fn main() {
    println!("lightly loaded 4x4 rack, 4 lanes per link\n");
    run_with_policy(
        CrcPolicy::LatencyMinimize,
        "latency-only policy (lanes always hot)",
    );
    run_with_policy(
        CrcPolicy::PowerCap {
            budget: Power::from_kilowatts(1),
        },
        "power-cap policy (1 kW interconnect budget)",
    );
    println!("\nThe power-cap policy sheds idle lanes (PLP #1/#3) at a small latency cost.");
}
