//! Hot-path perf smoke sweep.
//!
//! Drives the heavy-shuffle scenario matrix through the scenario engine,
//! measures engine events/sec and tail latency per cell, and writes the
//! results to `BENCH_hotpath.json` — the perf-trajectory artifact the
//! ROADMAP tracks across hot-path work. It also cross-checks the calendar
//! scheduler against the reference heap (byte-identical CSV exports) and a
//! single-threaded against a parallel runner, exiting non-zero on any
//! divergence or failed job so CI can gate on correctness **without** gating
//! on timing.
//!
//! ```text
//! cargo run --release --example perf_smoke            # full 8x8 sweep
//! cargo run --release --example perf_smoke -- --tiny  # CI-sized matrix
//! ```

use rackfabric::prelude::TopologySpec;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::json;
use rackfabric_sim::prelude::*;

/// Pre-refactor engine throughput on this sweep's 8×8 heavy-shuffle cells
/// (binary-heap scheduler, hash-map fabric state, one event per packet),
/// measured at the PR-1 tree on the reference dev container. These anchor
/// the speedup column; absolute numbers vary by machine, ratios far less.
const PRE_PR_EVENTS_PER_SEC_ADAPTIVE: f64 = 315_794.0;
const PRE_PR_EVENTS_PER_SEC_BASELINE: f64 = 654_893.0;

fn matrix(tiny: bool, scheduler: SchedulerKind) -> Matrix {
    let (rack, horizon) = if tiny {
        (TopologySpec::grid(3, 3, 2), SimTime::from_millis(10))
    } else {
        (TopologySpec::grid(8, 8, 2), SimTime::from_millis(50))
    };
    let base = ScenarioSpec::new(
        "hotpath-perf-smoke",
        rack,
        WorkloadSpec::Shuffle {
            partition: Bytes::from_kib(64),
            load: 1.0,
        },
    )
    .horizon(horizon)
    .scheduler(scheduler);
    Matrix::new(base)
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .master_seed(7)
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let mode = if tiny { "tiny" } else { "full" };
    eprintln!("perf_smoke: running {mode} heavy-shuffle sweep...");

    // Timed runs: calendar scheduler, single thread (clean per-job timing),
    // best wall-clock of three passes per cell to shrug off machine noise.
    // Event counts and all simulation results are identical across passes
    // (enforced below); only the wall measurement varies.
    let mut passes: Vec<MatrixResult> = (0..3)
        .map(|_| Runner::single_threaded().run(&matrix(tiny, SchedulerKind::Calendar)))
        .collect();
    for pass in &passes {
        if pass.failed_jobs() > 0 {
            eprintln!("perf_smoke: FAIL — {} job(s) panicked", pass.failed_jobs());
            std::process::exit(1);
        }
    }
    let repeat_ok = passes
        .windows(2)
        .all(|w| w[0].to_csv() == w[1].to_csv() && w[0].to_json() == w[1].to_json());
    if !repeat_ok {
        eprintln!("perf_smoke: FAIL — repeated runs diverged");
    }
    let mut timed = passes.remove(0);
    for pass in &passes {
        for (cell, other) in timed.cells.iter_mut().zip(&pass.cells) {
            cell.wall_nanos = cell.wall_nanos.min(other.wall_nanos);
        }
    }

    // Correctness cross-checks (never timing-sensitive):
    // 1. heap vs calendar must export byte-identical aggregates,
    // 2. 1 thread vs N threads must export byte-identical aggregates.
    let heap = Runner::single_threaded().run(&matrix(tiny, SchedulerKind::Heap));
    let parallel = Runner::new(0).run(&matrix(tiny, SchedulerKind::Calendar));
    let heap_ok = timed.to_csv() == heap.to_csv() && timed.to_json() == heap.to_json();
    let threads_ok = timed.to_csv() == parallel.to_csv() && timed.to_json() == parallel.to_json();
    if !heap_ok {
        eprintln!("perf_smoke: FAIL — heap and calendar schedulers diverged");
    }
    if !threads_ok {
        eprintln!("perf_smoke: FAIL — 1-thread and N-thread sweeps diverged");
    }

    // Render BENCH_hotpath.json.
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"hotpath_perf_smoke\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"pre_pr_events_per_sec\": {{\"baseline\": {}, \"adaptive\": {}}},\n",
        json::number(PRE_PR_EVENTS_PER_SEC_BASELINE),
        json::number(PRE_PR_EVENTS_PER_SEC_ADAPTIVE),
    ));
    out.push_str(&format!(
        "  \"determinism\": {{\"heap_vs_calendar_identical\": {heap_ok}, \"serial_vs_parallel_identical\": {threads_ok}}},\n"
    ));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in timed.cells.iter().enumerate() {
        let controller = cell
            .labels
            .iter()
            .find(|(k, _)| k == "controller")
            .map(|(_, v)| v.as_str())
            .unwrap_or("?");
        let events_per_sec = cell.events_per_sec();
        let pre_pr = match controller {
            "baseline" => PRE_PR_EVENTS_PER_SEC_BASELINE,
            _ => PRE_PR_EVENTS_PER_SEC_ADAPTIVE,
        };
        // Speedup is only meaningful against the matching full-size cells.
        let speedup = if tiny { 0.0 } else { events_per_sec / pre_pr };
        out.push_str(&format!(
            "    {{\"controller\": \"{}\", \"events\": {}, \"wall_ms\": {}, \"events_per_sec\": {}, \
             \"latency_p50_ps\": {}, \"latency_p99_ps\": {}, \"route_cache_hit_rate\": {}, \
             \"completed_runs\": {}, \"speedup_vs_pre_pr\": {}}}{}\n",
            json::escape(controller),
            cell.events_processed,
            json::number(cell.wall_nanos as f64 / 1e6),
            json::number(events_per_sec),
            json::number(cell.packet_latency.p50),
            json::number(cell.packet_latency.p99),
            json::number(cell.route_cache_hit_rate),
            cell.completed_runs,
            json::number(speedup),
            if i + 1 < timed.cells.len() { "," } else { "" },
        ));
        eprintln!(
            "  {controller:>9}: {:>9} events in {:>8.1} ms = {:>9.0} events/sec \
             (p50 {:.0} ps, p99 {:.0} ps, cache {:.3}{})",
            cell.events_processed,
            cell.wall_nanos as f64 / 1e6,
            events_per_sec,
            cell.packet_latency.p50,
            cell.packet_latency.p99,
            cell.route_cache_hit_rate,
            if tiny {
                String::new()
            } else {
                format!(", {speedup:.2}x vs pre-PR")
            },
        );
    }
    out.push_str("  ]\n}\n");

    let path = "BENCH_hotpath.json";
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("perf_smoke: FAIL — could not write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("perf_smoke: wrote {path}");

    if !(heap_ok && threads_ok && repeat_ok) {
        std::process::exit(1);
    }
}
