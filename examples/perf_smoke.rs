//! Hot-path perf smoke sweep.
//!
//! Drives the heavy-shuffle scenario matrices through the scenario engine,
//! measures engine events/sec and tail latency per cell, and writes the
//! results to `BENCH_hotpath.json` — the perf-trajectory artifact the
//! ROADMAP tracks across hot-path work. Correctness gates (never
//! timing-sensitive):
//!
//! * heap vs calendar schedulers must export byte-identical aggregates,
//! * 1-thread vs N-thread runners must export byte-identical aggregates,
//! * **1-shard vs N-shard runs of the sharded multi-rack engine must export
//!   byte-identical aggregates** — the acceptance gate of the sharded
//!   engine, which also opens the 16×16 torus and multi-rack fat-tree cells
//!   the monolithic engine could not afford.
//!
//! `BENCH_hotpath.json` bookkeeping: the `pre_pr_events_per_sec` baseline
//! recorded by the first run on a machine is **preserved** across runs (it
//! anchors the speedup column; overwriting it with the latest tree's
//! numbers would erase the trajectory), and every full run **appends** a
//! `history` entry so the perf trajectory is browsable per-commit.
//!
//! ```text
//! cargo run --release --example perf_smoke                 # full sweep
//! cargo run --release --example perf_smoke -- --tiny       # CI-sized
//! cargo run --release --example perf_smoke -- --shards 4   # N-shard arm
//! cargo run --release --example perf_smoke -- --workers 8  # worker-scaling cap
//! cargo run --release --example perf_smoke -- --export-cells out.json
//! cargo run --release --example perf_smoke -- --dragonfly --shards 9
//! ```
//!
//! `--dragonfly` runs **only** the 1k-host dragonfly heavy-shuffle cell —
//! `dragonfly(9, 8, 16)`: 1152 hosts behind 72 routers in 9 groups, ~1.5M
//! all-to-all flows — at the given `--shards` (9 = one shard per group, so
//! every cut link is a long-latency global link). The cell is deliberately
//! a single process arm: CI runs it twice (`--shards 1` and `--shards 9`)
//! and `cmp`s the two `--export-cells` files byte for byte, which is the
//! sharded-engine acceptance gate at dragonfly scale.
//!
//! `--workers N` caps the **window-parallel worker sweep**: the heaviest
//! sharded cell re-runs at worker counts 1, 2, 4, … up to
//! `min(N, shards)`, and the per-count events/sec plus speedup-vs-1-worker
//! land in `BENCH_hotpath.json` (`worker_sweep`). Worker count never
//! affects simulation results — enforced here by comparing summaries
//! across counts.
//!
//! `--export-cells` writes the sharded sweep's byte-stable cells JSON (no
//! wall-clock fields) to a file; CI runs the example twice with different
//! `--shards` values and diffs the two exports byte for byte.
//!
//! `--profile` adds a `shard_profile` breakdown of the heaviest worker-sweep
//! run to `BENCH_hotpath.json` — per-shard event counts and drain time,
//! per-worker barrier-wait totals, barrier-wait fraction, and shard event
//! imbalance. `--trace FILE` writes a Chrome-trace JSON of the same run
//! (open it at <https://ui.perfetto.dev>). Neither flag can move simulation
//! results: instrumentation is wall-clock-only and the byte-compare gates
//! above run with it enabled.

use rackfabric::prelude::{RoutingAlgorithm, TopologySpec};
use rackfabric_obs::prelude::{Observer, TraceSink, WindowProfile};
use rackfabric_scenario::prelude::*;
use rackfabric_sim::json;
use rackfabric_sim::prelude::*;
use std::sync::Arc;

/// Pre-refactor engine throughput on this sweep's 8×8 heavy-shuffle cells
/// (binary-heap scheduler, hash-map fabric state, one event per packet),
/// measured at the PR-1 tree on the reference dev container. Used only when
/// no `BENCH_hotpath.json` exists yet; afterwards the baseline recorded in
/// the file wins and is never overwritten.
const PRE_PR_EVENTS_PER_SEC_ADAPTIVE: f64 = 315_794.0;
const PRE_PR_EVENTS_PER_SEC_BASELINE: f64 = 654_893.0;

/// How many history entries the bench file retains.
const HISTORY_CAP: usize = 50;

fn matrix(tiny: bool, scheduler: SchedulerKind) -> Matrix {
    let (rack, horizon) = if tiny {
        (TopologySpec::grid(3, 3, 2), SimTime::from_millis(10))
    } else {
        (TopologySpec::grid(8, 8, 2), SimTime::from_millis(50))
    };
    let base = ScenarioSpec::new(
        "hotpath-perf-smoke",
        rack,
        WorkloadSpec::Shuffle {
            partition: Bytes::from_kib(64),
            load: 1.0,
        },
    )
    .horizon(horizon)
    .scheduler(scheduler);
    Matrix::new(base)
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .master_seed(7)
}

/// The sharded-engine sweep: multi-rack cells the monolithic engine could
/// not afford, each run at `shards` rack groups. Tiny mode keeps one small
/// rack so the CI gate stays cheap.
fn sharded_matrix(tiny: bool, shards: usize) -> Matrix {
    let (topologies, partition, horizon) = if tiny {
        (
            vec![AxisValue::Topology(TopologySpec::grid(3, 3, 2))],
            Bytes::from_kib(16),
            SimTime::from_millis(10),
        )
    } else {
        // Full-size cells model racks 20 m apart: the inter-rack flight
        // time funds a ~10x longer conservative lookahead (the window
        // length), which is where the sharded engine's sync overhead goes.
        (
            vec![
                AxisValue::Topology(
                    TopologySpec::torus(16, 16, 2).with_rack_spacing(Length::from_m(20)),
                ),
                AxisValue::Topology(
                    TopologySpec::fat_tree(128, 16, 4, 2).with_rack_spacing(Length::from_m(20)),
                ),
            ],
            Bytes::from_kib(4),
            SimTime::from_millis(40),
        )
    };
    let base = ScenarioSpec::new(
        "sharded-perf-smoke",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::Shuffle {
            partition,
            load: 1.0,
        },
    )
    .horizon(horizon)
    .shards(shards);
    Matrix::new(base)
        .axis("racks", topologies)
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .master_seed(7)
}

/// The 1k-host dragonfly arm: one heavy-shuffle cell on
/// `dragonfly(9, 8, 16)` — 1152 hosts, 1224 nodes, ~1.5M all-to-all flows —
/// with 20 m inter-group spacing so the global links fund the long
/// conservative lookahead. The static baseline controller with the minimal
/// routing override keeps the cell's cost in the engine hot path (per-flow
/// Valiant/adaptive BFS at 1.5M flows would dominate the measurement; the
/// routing policies are byte-compared across shard counts at small scale in
/// `tests/shard_determinism.rs` and compared for results in the e11
/// campaign).
fn dragonfly_matrix(shards: usize) -> Matrix {
    let topo = TopologySpec::dragonfly(9, 8, 16, 2).with_rack_spacing(Length::from_m(20));
    let base = ScenarioSpec::new(
        "dragonfly-scale",
        topo,
        WorkloadSpec::Shuffle {
            partition: Bytes::new(512),
            load: 1.0,
        },
    )
    .controller(ControllerSpec::Baseline)
    // Deep buffers absorb the shuffle barrier: with the default 256 KiB
    // ports the simultaneous all-to-all start spends ~95% of its events on
    // drop/retry cycles (230M+ events per arm, ~4 min wall); 64 MiB keeps
    // the cell lossless so each flow costs one inject + per-hop trains +
    // one ack and the arm measures the fabric, not the retry storm.
    .port_buffer(Bytes::from_kib(64 * 1024))
    .horizon(SimTime::from_millis(50))
    .shards(shards);
    Matrix::new(base)
        .axis(
            "routing",
            vec![AxisValue::Routing(RoutingAlgorithm::ShortestHop)],
        )
        .master_seed(7)
}

/// The heaviest sharded cell — the first-topology adaptive cell of the
/// sharded sweep — used by the worker-scaling sweep. Derived from
/// [`sharded_matrix`] so retuning the sweep's cells retunes this too.
fn worker_sweep_spec(tiny: bool, shards: usize) -> ScenarioSpec {
    sharded_matrix(tiny, shards)
        .expand()
        .into_iter()
        .find(|job| {
            job.labels
                .iter()
                .any(|(axis, value)| axis == "controller" && value != "baseline")
        })
        .expect("the sharded matrix always has an adaptive cell")
        .spec
}

/// One worker-count measurement of the worker-scaling sweep.
struct WorkerPoint {
    workers: usize,
    events: u64,
    wall_nanos: u64,
    summary_fingerprint: String,
    profile: Option<WindowProfile>,
}

/// Runs the worker-scaling sweep: the same sharded cell at worker counts
/// 1, 2, 4, … up to `min(cap, shards)`. Results must be identical across
/// counts (worker count is a pure execution knob); the wall clock is the
/// only thing allowed to move. Every point runs with the window profiler
/// attached (per-shard events and barrier waits land in the bench file);
/// `trace` additionally records a span trace of the heaviest (max-worker)
/// point.
fn worker_sweep(
    tiny: bool,
    shards: usize,
    cap: usize,
    trace: Option<&Arc<TraceSink>>,
) -> Vec<WorkerPoint> {
    let mut counts = vec![1usize];
    while let Some(&last) = counts.last() {
        let next = last * 2;
        if next > cap.min(shards.max(1)) {
            break;
        }
        counts.push(next);
    }
    let max_workers = *counts.last().unwrap_or(&1);
    let spec = worker_sweep_spec(tiny, shards.max(1));
    counts
        .into_iter()
        .map(|workers| {
            // Best wall-clock of three passes per count: a speedup ratio of
            // single measurements is scheduler-noise roulette, and CI gates
            // on this ratio. Results must be identical across passes.
            let mut best: Option<WorkerPoint> = None;
            for pass in 0..3 {
                let flows = spec.build_flows();
                let mut config =
                    rackfabric::shard::ShardedConfig::new(spec.to_fabric_config(), spec.shards);
                config.workers = workers;
                config.profile = true;
                if workers == max_workers && pass == 0 {
                    if let Some(sink) = trace {
                        config.observer = Observer::off().with_trace(sink.clone());
                    }
                }
                let fabric = rackfabric::shard::ShardedFabric::new(config, flows);
                let start = std::time::Instant::now();
                let run = fabric.run();
                let wall_nanos = start.elapsed().as_nanos() as u64;
                let point = WorkerPoint {
                    workers,
                    events: run.events_processed,
                    wall_nanos,
                    summary_fingerprint: format!("{:?}", run.metrics.summary()),
                    profile: run.profile,
                };
                best = Some(match best.take() {
                    None => point,
                    Some(prev) => {
                        if prev.events != point.events
                            || prev.summary_fingerprint != point.summary_fingerprint
                        {
                            eprintln!("perf_smoke: FAIL — repeated {workers}-worker runs diverged");
                            std::process::exit(1);
                        }
                        if point.wall_nanos < prev.wall_nanos {
                            point
                        } else {
                            prev
                        }
                    }
                });
            }
            best.expect("three passes ran")
        })
        .collect()
}

/// The previously recorded bench file, if any (used to preserve the pre-PR
/// baseline and the run history across runs).
fn previous_bench(path: &str) -> Option<json::JsonValue> {
    let text = std::fs::read_to_string(path).ok()?;
    json::parse(&text).ok()
}

/// Renders one `{"baseline": x, "adaptive": y}` object.
fn baselines_json(baseline: f64, adaptive: f64) -> String {
    format!(
        "{{\"baseline\": {}, \"adaptive\": {}}}",
        json::number(baseline),
        json::number(adaptive)
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    // A malformed --shards must be a hard error: silently falling back would
    // let both CI arms run the same shard count and turn the byte-for-byte
    // cmp gate into a tautology.
    let shards = match args.iter().position(|a| a == "--shards") {
        None => 4,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) => n.max(1),
            None => {
                eprintln!("perf_smoke: FAIL — --shards requires an integer argument");
                std::process::exit(1);
            }
        },
    };
    // Same hard-error rule as --shards: a silently ignored cap would quietly
    // shrink the worker sweep.
    let workers_cap = match args.iter().position(|a| a == "--workers") {
        None => 4,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) => n.max(1),
            None => {
                eprintln!("perf_smoke: FAIL — --workers requires an integer argument");
                std::process::exit(1);
            }
        },
    };
    let export_cells = args
        .iter()
        .position(|a| a == "--export-cells")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let profile = args.iter().any(|a| a == "--profile");
    let trace_path = match args.iter().position(|a| a == "--trace") {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(path) => Some(path.clone()),
            None => {
                eprintln!("perf_smoke: FAIL — --trace requires a file argument");
                std::process::exit(1);
            }
        },
    };
    if args.iter().any(|a| a == "--dragonfly") {
        run_dragonfly(shards, export_cells.as_deref());
        return;
    }

    let mode = if tiny { "tiny" } else { "full" };
    eprintln!("perf_smoke: running {mode} heavy-shuffle sweep ({shards}-shard arm)...");

    // Timed runs: calendar scheduler, single thread (clean per-job timing),
    // best wall-clock of three passes per cell to shrug off machine noise.
    // Event counts and all simulation results are identical across passes
    // (enforced below); only the wall measurement varies.
    let mut passes: Vec<MatrixResult> = (0..3)
        .map(|_| Runner::single_threaded().run(&matrix(tiny, SchedulerKind::Calendar)))
        .collect();
    for pass in &passes {
        if pass.failed_jobs() > 0 {
            eprintln!("perf_smoke: FAIL — {} job(s) panicked", pass.failed_jobs());
            std::process::exit(1);
        }
    }
    let repeat_ok = passes
        .windows(2)
        .all(|w| w[0].to_csv() == w[1].to_csv() && w[0].to_json() == w[1].to_json());
    if !repeat_ok {
        eprintln!("perf_smoke: FAIL — repeated runs diverged");
    }
    let mut timed = passes.remove(0);
    for pass in &passes {
        for (cell, other) in timed.cells.iter_mut().zip(&pass.cells) {
            cell.wall_nanos = cell.wall_nanos.min(other.wall_nanos);
        }
    }

    // Correctness cross-checks (never timing-sensitive):
    // 1. heap vs calendar must export byte-identical aggregates,
    // 2. 1 thread vs N threads must export byte-identical aggregates.
    let heap = Runner::single_threaded().run(&matrix(tiny, SchedulerKind::Heap));
    let parallel = Runner::new(0).run(&matrix(tiny, SchedulerKind::Calendar));
    let heap_ok = timed.to_csv() == heap.to_csv() && timed.to_json() == heap.to_json();
    let threads_ok = timed.to_csv() == parallel.to_csv() && timed.to_json() == parallel.to_json();
    if !heap_ok {
        eprintln!("perf_smoke: FAIL — heap and calendar schedulers diverged");
    }
    if !threads_ok {
        eprintln!("perf_smoke: FAIL — 1-thread and N-thread sweeps diverged");
    }

    // 3. The sharded engine: N shards must export byte-identically to the
    //    1-shard reference. The N-shard arm is the timed one (it is the
    //    configuration the multi-rack cells are meant to run at). When this
    //    invocation *is* the 1-shard arm there is nothing to cross-check
    //    in-process — rerunning the identical matrix would only compare a
    //    run against its own repeat; the CI gate compares this arm's export
    //    against the N-shard arm's across processes instead.
    eprintln!("perf_smoke: running sharded multi-rack sweep ({shards}-shard arm)...");
    let sharded_n = Runner::single_threaded().run(&sharded_matrix(tiny, shards));
    if sharded_n.failed_jobs() > 0 {
        eprintln!("perf_smoke: FAIL — sharded job(s) panicked");
        std::process::exit(1);
    }
    let shards_ok = if shards == 1 {
        true
    } else {
        let sharded_1 = Runner::single_threaded().run(&sharded_matrix(tiny, 1));
        if sharded_1.failed_jobs() > 0 {
            eprintln!("perf_smoke: FAIL — sharded job(s) panicked");
            std::process::exit(1);
        }
        sharded_1.to_csv() == sharded_n.to_csv() && sharded_1.to_json() == sharded_n.to_json()
    };
    if !shards_ok {
        eprintln!("perf_smoke: FAIL — 1-shard and {shards}-shard sweeps diverged");
    }
    for cell in &sharded_n.cells {
        if cell.completed_runs != cell.runs - cell.failed_runs {
            eprintln!(
                "perf_smoke: FAIL — sharded cell {:?} left flows incomplete",
                cell.labels
            );
            std::process::exit(1);
        }
    }

    // 4. Window-parallel worker scaling: the same sharded cell at growing
    //    worker counts. Records speedup-vs-1-worker; results must not move.
    eprintln!("perf_smoke: running worker-scaling sweep (cap {workers_cap})...");
    let trace_sink = trace_path.as_ref().map(|_| Arc::new(TraceSink::new()));
    let worker_points = worker_sweep(tiny, shards, workers_cap, trace_sink.as_ref());
    let workers_ok = worker_points.windows(2).all(|w| {
        w[0].events == w[1].events && w[0].summary_fingerprint == w[1].summary_fingerprint
    });
    if !workers_ok {
        eprintln!("perf_smoke: FAIL — worker counts changed simulation results");
    }
    let one_worker_nanos = worker_points.first().map(|p| p.wall_nanos).unwrap_or(0);
    for point in &worker_points {
        let events_per_sec = if point.wall_nanos == 0 {
            0.0
        } else {
            point.events as f64 * 1e9 / point.wall_nanos as f64
        };
        let barrier = point
            .profile
            .as_ref()
            .map(|p| {
                format!(
                    ", barrier wait {:.1}%",
                    p.barrier_wait_fraction(point.wall_nanos, point.workers) * 100.0
                )
            })
            .unwrap_or_default();
        eprintln!(
            "  {} worker(s): {:>9} events in {:>8.1} ms = {:>9.0} events/sec ({:.2}x vs 1 worker{})",
            point.workers,
            point.events,
            point.wall_nanos as f64 / 1e6,
            events_per_sec,
            one_worker_nanos as f64 / point.wall_nanos.max(1) as f64,
            barrier,
        );
    }

    if let (Some(path), Some(sink)) = (&trace_path, &trace_sink) {
        if let Err(e) = sink.write_file(path) {
            eprintln!("perf_smoke: FAIL — could not write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "perf_smoke: wrote engine trace ({} event(s), {} dropped) to {path}",
            sink.len(),
            sink.dropped()
        );
    }

    if let Some(path) = &export_cells {
        // Byte-stable cells export (no wall-clock fields): CI diffs the
        // files produced by two runs with different --shards values.
        if let Err(e) = std::fs::write(path, sharded_n.to_json()) {
            eprintln!("perf_smoke: FAIL — could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("perf_smoke: wrote byte-stable sharded cells to {path}");
    }

    // Preserve the first-recorded pre-PR baseline and the run history.
    let bench_path = "BENCH_hotpath.json";
    let previous = previous_bench(bench_path);
    let pre_pr = previous
        .as_ref()
        .and_then(|p| p.get("pre_pr_events_per_sec"))
        .and_then(|b| Some((b.get("baseline")?.as_f64()?, b.get("adaptive")?.as_f64()?)))
        .unwrap_or((
            PRE_PR_EVENTS_PER_SEC_BASELINE,
            PRE_PR_EVENTS_PER_SEC_ADAPTIVE,
        ));
    let mut history: Vec<String> = previous
        .as_ref()
        .and_then(|p| p.get("history"))
        .and_then(|h| h.as_array())
        .map(|entries| entries.iter().map(render_history_entry).collect())
        .unwrap_or_default();
    // Cap on load, not only on append: a tiny run rewriting an over-long
    // history (e.g. one produced before the cap existed) must trim it too.
    if history.len() > HISTORY_CAP {
        let excess = history.len() - HISTORY_CAP;
        history.drain(..excess);
    }

    // Render BENCH_hotpath.json.
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"hotpath_perf_smoke\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    // Worker-scaling ratios are only meaningful when the box can actually
    // run the workers concurrently; record the core count next to them.
    out.push_str(&format!(
        "  \"available_cores\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!(
        "  \"pre_pr_events_per_sec\": {},\n",
        baselines_json(pre_pr.0, pre_pr.1)
    ));
    out.push_str(&format!(
        "  \"determinism\": {{\"heap_vs_calendar_identical\": {heap_ok}, \
         \"serial_vs_parallel_identical\": {threads_ok}, \
         \"shard_counts_identical\": {shards_ok}, \
         \"worker_counts_identical\": {workers_ok}}},\n"
    ));
    // Window-parallel scaling of the sharded engine (ROADMAP follow-up):
    // events/sec per worker count on the heaviest sharded cell, anchored to
    // the 1-worker wall clock of the same run.
    out.push_str("  \"worker_sweep\": [\n");
    let worker_rows: Vec<String> = worker_points
        .iter()
        .map(|point| {
            let events_per_sec = if point.wall_nanos == 0 {
                0.0
            } else {
                point.events as f64 * 1e9 / point.wall_nanos as f64
            };
            // Per-shard event counts are deterministic; the barrier-wait
            // columns are wall-clock (this file is a perf artifact, never a
            // golden export).
            let profile_cols = point
                .profile
                .as_ref()
                .map(|p| {
                    let shard_events: Vec<String> =
                        p.shard_events().iter().map(|e| e.to_string()).collect();
                    let waits: Vec<String> = p
                        .workers
                        .iter()
                        .take(point.workers)
                        .map(|w| w.barrier_wait_nanos.to_string())
                        .collect();
                    // Early advances count rounds a worker entered without
                    // spinning on a peer (the phase-counted executor's fast
                    // path); fused windows count the zero-activity windows
                    // the planner merged. Both are wall-clock-free.
                    let advances: Vec<String> = p
                        .workers
                        .iter()
                        .take(point.workers)
                        .map(|w| w.early_advances.to_string())
                        .collect();
                    format!(
                        ", \"shard_events\": [{}], \"barrier_wait_ns\": [{}], \
                         \"barrier_wait_fraction\": {}, \"early_advances\": [{}], \
                         \"fused_windows\": {}",
                        shard_events.join(", "),
                        waits.join(", "),
                        json::number(p.barrier_wait_fraction(point.wall_nanos, point.workers)),
                        advances.join(", "),
                        p.fused_windows,
                    )
                })
                .unwrap_or_default();
            format!(
                "    {{\"workers\": {}, \"shards\": {shards}, \"events\": {}, \"wall_ms\": {}, \
                 \"events_per_sec\": {}, \"speedup_vs_1_worker\": {}{}}}",
                point.workers,
                point.events,
                json::number(point.wall_nanos as f64 / 1e6),
                json::number(events_per_sec),
                json::number(one_worker_nanos as f64 / point.wall_nanos.max(1) as f64),
                profile_cols,
            )
        })
        .collect();
    out.push_str(&worker_rows.join(",\n"));
    out.push_str("\n  ],\n");
    // `--profile`: the full window-profiler breakdown of the heaviest
    // (max-worker) point — per-shard drain time, per-worker barrier waits,
    // window-length and events-per-window histogram bounds.
    if profile {
        if let Some(point) = worker_points.last() {
            if let Some(p) = &point.profile {
                out.push_str("  \"shard_profile\": ");
                out.push_str(&p.render_json(point.wall_nanos, point.workers));
                out.push_str(",\n");
                eprintln!(
                    "  profile [{} workers]: barrier wait {:.1}% of wall, \
                     shard imbalance {:.2}x, {} windows",
                    point.workers,
                    p.barrier_wait_fraction(point.wall_nanos, point.workers) * 100.0,
                    p.shard_event_imbalance(),
                    p.windows,
                );
            }
        }
    }
    out.push_str("  \"cells\": [\n");
    let mut cell_rows: Vec<String> = Vec::new();
    let mut history_cells: Vec<String> = Vec::new();
    for cell in timed.cells.iter() {
        let controller = cell
            .labels
            .iter()
            .find(|(k, _)| k == "controller")
            .map(|(_, v)| v.as_str())
            .unwrap_or("?");
        let events_per_sec = cell.events_per_sec();
        let anchor = match controller {
            "baseline" => pre_pr.0,
            _ => pre_pr.1,
        };
        // Speedup is only meaningful against the matching full-size cells.
        let speedup = if tiny { 0.0 } else { events_per_sec / anchor };
        cell_rows.push(format!(
            "    {{\"engine\": \"monolithic\", \"controller\": \"{}\", \"events\": {}, \
             \"wall_ms\": {}, \"events_per_sec\": {}, \"latency_p50_ps\": {}, \
             \"latency_p99_ps\": {}, \"route_cache_hit_rate\": {}, \"completed_runs\": {}, \
             \"speedup_vs_pre_pr\": {}}}",
            json::escape(controller),
            cell.events_processed,
            json::number(cell.wall_nanos as f64 / 1e6),
            json::number(events_per_sec),
            json::number(cell.packet_latency.p50),
            json::number(cell.packet_latency.p99),
            json::number(cell.route_cache_hit_rate),
            cell.completed_runs,
            json::number(speedup),
        ));
        history_cells.push(format!(
            "{{\"cell\": \"{}\", \"events_per_sec\": {}}}",
            json::escape(controller),
            json::number(events_per_sec)
        ));
        eprintln!(
            "  {controller:>9}: {:>9} events in {:>8.1} ms = {:>9.0} events/sec \
             (p50 {:.0} ps, p99 {:.0} ps, cache {:.3}{})",
            cell.events_processed,
            cell.wall_nanos as f64 / 1e6,
            events_per_sec,
            cell.packet_latency.p50,
            cell.packet_latency.p99,
            cell.route_cache_hit_rate,
            if tiny {
                String::new()
            } else {
                format!(", {speedup:.2}x vs pre-PR")
            },
        );
    }
    for cell in sharded_n.cells.iter() {
        let rack = cell
            .labels
            .iter()
            .find(|(k, _)| k == "racks")
            .map(|(_, v)| v.as_str())
            .unwrap_or("?");
        let controller = cell
            .labels
            .iter()
            .find(|(k, _)| k == "controller")
            .map(|(_, v)| v.as_str())
            .unwrap_or("?");
        let label = format!("{rack}/{controller}");
        let events_per_sec = cell.events_per_sec();
        cell_rows.push(format!(
            "    {{\"engine\": \"sharded\", \"racks\": \"{}\", \"controller\": \"{}\", \
             \"shards\": {}, \"events\": {}, \"wall_ms\": {}, \"events_per_sec\": {}, \
             \"latency_p50_ps\": {}, \"latency_p99_ps\": {}, \"route_cache_hit_rate\": {}, \
             \"completed_runs\": {}}}",
            json::escape(rack),
            json::escape(controller),
            shards,
            cell.events_processed,
            json::number(cell.wall_nanos as f64 / 1e6),
            json::number(events_per_sec),
            json::number(cell.packet_latency.p50),
            json::number(cell.packet_latency.p99),
            json::number(cell.route_cache_hit_rate),
            cell.completed_runs,
        ));
        history_cells.push(format!(
            "{{\"cell\": \"{}\", \"events_per_sec\": {}}}",
            json::escape(&label),
            json::number(events_per_sec)
        ));
        eprintln!(
            "  {label:>32} [{shards} shards]: {:>9} events in {:>8.1} ms = {:>9.0} events/sec \
             (p50 {:.0} ps, p99 {:.0} ps)",
            cell.events_processed,
            cell.wall_nanos as f64 / 1e6,
            events_per_sec,
            cell.packet_latency.p50,
            cell.packet_latency.p99,
        );
    }
    out.push_str(&cell_rows.join(",\n"));
    out.push_str("\n  ],\n");

    // Append this run to the history (full runs only: tiny CI runs measure
    // nothing meaningful and would flood the trajectory).
    if !tiny {
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        history.push(format!(
            "{{\"unix_secs\": {unix_secs}, \"mode\": \"{mode}\", \"shards\": {shards}, \
             \"cells\": [{}]}}",
            history_cells.join(", ")
        ));
        if history.len() > HISTORY_CAP {
            let excess = history.len() - HISTORY_CAP;
            history.drain(..excess);
        }
    }
    if history.is_empty() {
        out.push_str("  \"history\": []\n}\n");
    } else {
        out.push_str("  \"history\": [\n    ");
        out.push_str(&history.join(",\n    "));
        out.push_str("\n  ]\n}\n");
    }

    if let Err(e) = std::fs::write(bench_path, &out) {
        eprintln!("perf_smoke: FAIL — could not write {bench_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("perf_smoke: wrote {bench_path}");

    if !(heap_ok && threads_ok && repeat_ok && shards_ok && workers_ok) {
        std::process::exit(1);
    }
}

/// Runs the 1k-host dragonfly arm and exits the process: one heavy-shuffle
/// cell at the requested shard count, exported byte-stably for the CI
/// `cmp` gate. Deliberately skips the in-process 1-vs-N cross-check — the
/// cell is ~1.5M flows, and CI compares the two arms across processes
/// instead, which costs one run per arm instead of two.
fn run_dragonfly(shards: usize, export_cells: Option<&str>) {
    eprintln!("perf_smoke: running 1k-host dragonfly heavy-shuffle ({shards}-shard arm)...");
    let result = Runner::single_threaded().run(&dragonfly_matrix(shards));
    if result.failed_jobs() > 0 {
        eprintln!(
            "perf_smoke: FAIL — {} dragonfly job(s) panicked",
            result.failed_jobs()
        );
        std::process::exit(1);
    }
    for cell in &result.cells {
        if cell.completed_runs != cell.runs - cell.failed_runs {
            eprintln!(
                "perf_smoke: FAIL — dragonfly cell {:?} left flows incomplete",
                cell.labels
            );
            std::process::exit(1);
        }
        let routing = cell
            .labels
            .iter()
            .find(|(k, _)| k == "routing")
            .map(|(_, v)| v.as_str())
            .unwrap_or("?");
        eprintln!(
            "  dragonfly-9g-8a-16h/{routing} [{shards} shard(s)]: {:>9} events in {:>8.1} ms \
             = {:>9.0} events/sec (p50 {:.0} ps, p99 {:.0} ps)",
            cell.events_processed,
            cell.wall_nanos as f64 / 1e6,
            cell.events_per_sec(),
            cell.packet_latency.p50,
            cell.packet_latency.p99,
        );
    }
    if let Some(path) = export_cells {
        if let Err(e) = std::fs::write(path, result.to_json()) {
            eprintln!("perf_smoke: FAIL — could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("perf_smoke: wrote byte-stable dragonfly cells to {path}");
    }
}

/// Re-renders a parsed history entry back to compact JSON (the entries are
/// written by this example, so the shape is fixed).
fn render_history_entry(entry: &json::JsonValue) -> String {
    let unix_secs = entry.get("unix_secs").and_then(|v| v.as_u64()).unwrap_or(0);
    let mode = entry.get("mode").and_then(|v| v.as_str()).unwrap_or("full");
    let shards = entry.get("shards").and_then(|v| v.as_u64()).unwrap_or(0);
    let cells = entry
        .get("cells")
        .and_then(|v| v.as_array())
        .map(|cells| {
            cells
                .iter()
                .map(|c| {
                    format!(
                        "{{\"cell\": \"{}\", \"events_per_sec\": {}}}",
                        json::escape(c.get("cell").and_then(|v| v.as_str()).unwrap_or("?")),
                        json::number(
                            c.get("events_per_sec")
                                .and_then(|v| v.as_f64())
                                .unwrap_or(0.0)
                        )
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        })
        .unwrap_or_default();
    format!(
        "{{\"unix_secs\": {unix_secs}, \"mode\": \"{}\", \"shards\": {shards}, \"cells\": [{cells}]}}",
        json::escape(mode)
    )
}
