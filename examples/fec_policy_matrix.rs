//! Scenario matrix over the physical layer: FEC ladder × CRC policy under a
//! hotspot workload, exported as JSON. Shows how the PLP knobs (PLP #4,
//! adaptive FEC; PLP #3, power) become sweep axes.
//!
//! ```sh
//! cargo run --release --example fec_policy_matrix
//! ```

use rackfabric::prelude::{CrcPolicy, FecMode, TopologySpec};
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sim::units::Power;

fn main() {
    let base = ScenarioSpec::new(
        "fec-policy-matrix",
        TopologySpec::grid(4, 4, 4),
        WorkloadSpec::Hotspot {
            flows_per_node: 6.0,
            size: Bytes::from_kib(16),
            zipf_exponent: 1.2,
            load: 1.0,
        },
    )
    .horizon(SimTime::from_millis(100));

    let matrix = Matrix::new(base)
        .axis(
            "fec",
            vec![
                AxisValue::Fec(FecSetting::Fixed(FecMode::None)),
                AxisValue::Fec(FecSetting::Fixed(FecMode::FireCode)),
                AxisValue::Fec(FecSetting::Fixed(FecMode::Rs528)),
                AxisValue::Fec(FecSetting::Fixed(FecMode::Rs544)),
            ],
        )
        .axis(
            "policy",
            vec![
                AxisValue::Policy(CrcPolicy::LatencyMinimize),
                AxisValue::Policy(CrcPolicy::CongestionBalance),
                AxisValue::Policy(CrcPolicy::PowerCap {
                    budget: Power::from_kilowatts(2),
                }),
                AxisValue::Policy(CrcPolicy::Hybrid {
                    budget: Power::from_kilowatts(2),
                }),
            ],
        )
        .replicates(2)
        .master_seed(11);

    eprintln!(
        "sweeping {} cells / {} jobs...",
        matrix.cell_count(),
        matrix.job_count()
    );
    let result = Runner::new(0).run(&matrix);
    print!("{}", result.to_json());
}
