//! Quickstart: run a small MapReduce shuffle on an adaptive 3x3 rack fabric
//! and print the latency / power summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rackfabric::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_workload::{MapReduceShuffle, Workload};

fn main() {
    // A 3x3 grid of sleds, two 25 Gb/s lanes per link.
    let spec = TopologySpec::grid(3, 3, 2);

    // The paper's motivating workload: an all-to-all shuffle with a barrier.
    let flows = MapReduceShuffle::all_to_all(9, Bytes::from_kib(64)).generate(&mut DetRng::new(42));
    println!(
        "workload: {} flows, {} each",
        flows.len(),
        Bytes::from_kib(64)
    );

    // Adaptive fabric: Closed Ring Control with the default hybrid policy.
    let mut config = FabricConfig::adaptive(spec);
    config.sim = SimConfig::with_seed(42).horizon(SimTime::from_millis(500));
    let fabric = run_fabric(config, flows);

    let s = fabric.metrics.summary();
    println!("--- adaptive fabric ---");
    println!("flows completed          : {}", s.completed_flows);
    println!(
        "shuffle completion time  : {:.1} us",
        s.job_completion_us.unwrap_or(f64::NAN)
    );
    println!(
        "packet latency p50 / p99 : {:.2} / {:.2} us",
        s.packet_latency.p50 / 1e6,
        s.packet_latency.p99 / 1e6
    );
    println!("goodput                  : {:.1} Gb/s", s.goodput_gbps());
    println!("mean interconnect power  : {:.1} W", s.mean_power_w);
    println!("PLP commands issued      : {}", s.plp_commands);
    println!(
        "latency share in switches: {:.0}%",
        s.switching_fraction * 100.0
    );
}
