//! Load generator for `rackfabricd`: boots the daemon in-process, fires a
//! storm of concurrent submissions from many client threads over a small
//! pool of distinct scenarios, and checks the service's two core promises
//! under contention:
//!
//! 1. **Determinism** — every response for the same command is
//!    byte-identical, cold or warm, regardless of which worker served it
//!    or how many clients raced.
//! 2. **Warm economy** — only the first execution of each distinct
//!    scenario touches the engine; the store answers everything else
//!    (store puts == distinct scenarios).
//!
//! It prints the response-time histogram (p50/p99/max) from the daemon's
//! obs registry and can export artifacts for CI's byte-comparison gate:
//!
//! ```text
//! cargo run --release --example daemon_load -- [options]
//!
//!   --requests N     total submissions (default 1008)
//!   --clients K      client threads (default 16)
//!   --workers W      daemon worker pool size (default 4)
//!   --specs S        distinct scenarios in the pool (default 8)
//!   --p99-max-ms F   fail if p99 response time exceeds F milliseconds
//!   --store DIR      store directory (default: a fresh temp dir)
//!   --cmd-out FILE   write the distinct command lines (for --oneshot)
//!   --sample-out FILE  write one warm response line per distinct command
//!   --trace FILE     write a Chrome-trace JSON of the run
//! ```

use rackfabric::prelude::TopologySpec;
use rackfabric_cmd::command::Command;
use rackfabric_cmd::executor::Executor;
use rackfabric_daemon::prelude::*;
use rackfabric_obs::metrics::Registry;
use rackfabric_obs::trace::TraceSink;
use rackfabric_obs::{Observer, TimeDomain};
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sweep::key::canonical_spec_json;
use rackfabric_sweep::store::ResultStore;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    clients: usize,
    workers: usize,
    specs: usize,
    p99_max_ms: Option<f64>,
    store: Option<String>,
    cmd_out: Option<String>,
    sample_out: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 1008,
        clients: 16,
        workers: 4,
        specs: 8,
        p99_max_ms: None,
        store: None,
        cmd_out: None,
        sample_out: None,
        trace: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} requires a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--requests" => {
                args.requests = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--clients" => {
                args.clients = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--workers" => {
                args.workers = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--specs" => {
                args.specs = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--specs: {e}"))?
            }
            "--p99-max-ms" => {
                args.p99_max_ms = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--p99-max-ms: {e}"))?,
                )
            }
            "--store" => args.store = Some(value(&mut i)?),
            "--cmd-out" => args.cmd_out = Some(value(&mut i)?),
            "--sample-out" => args.sample_out = Some(value(&mut i)?),
            "--trace" => args.trace = Some(value(&mut i)?),
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

/// The scenario pool: tiny grid shuffles distinguished by seed and load —
/// cheap enough that a thousand warm queries dominate the run, real enough
/// that the first execution of each goes through the full engine.
fn spec_pool(count: usize) -> Vec<Command> {
    (0..count)
        .map(|n| {
            let spec = ScenarioSpec::new(
                "daemon-load",
                TopologySpec::grid(2, 2, 2),
                WorkloadSpec::Shuffle {
                    partition: Bytes::from_kib(2),
                    load: if n % 2 == 0 { 0.5 } else { 1.0 },
                },
            )
            .horizon(SimTime::from_millis(5))
            .seed(1000 + n as u64);
            Command::RunScenario {
                spec_json: canonical_spec_json(&spec),
            }
        })
        .collect()
}

fn fail(message: String) -> ! {
    eprintln!("daemon_load: FAIL — {message}");
    std::process::exit(1);
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("daemon_load: {message}");
            std::process::exit(2);
        }
    };

    let store_dir = args.store.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("rackfabricd-load-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = ResultStore::open(&store_dir).unwrap_or_else(|e| {
        fail(format!("cannot open store {store_dir}: {e}"));
    });

    let mut observer = Observer::off().with_registry(Arc::new(Registry::new()));
    if args.trace.is_some() {
        observer = observer.with_trace(Arc::new(TraceSink::new()));
    }
    let runner = Runner::new(1).with_observer(observer.clone());
    let exec = Arc::new(Executor::new(store, runner));

    let daemon = Daemon::start(
        exec.clone(),
        DaemonConfig {
            workers: args.workers,
            max_queue: args.requests.max(64),
            observer: observer.clone(),
            ..DaemonConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(format!("cannot start daemon: {e}")));

    let pool = Arc::new(spec_pool(args.specs));
    let client = Client::new(daemon.addr(), Duration::from_secs(120));

    eprintln!(
        "daemon_load: {} request(s) from {} client thread(s) over {} distinct scenario(s), {} worker(s)",
        args.requests, args.clients, args.specs, args.workers
    );
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..args.clients {
        let client = client.clone();
        let pool = pool.clone();
        let share = args.requests / args.clients + usize::from(c < args.requests % args.clients);
        handles.push(std::thread::spawn(move || {
            // Each reply keyed by pool index so the main thread can check
            // byte-identity across every thread and worker.
            let mut replies: Vec<(usize, String)> = Vec::with_capacity(share);
            for r in 0..share {
                let n = (c + r * 7) % pool.len();
                let tenant = format!("tenant-{}", c % 4);
                let priority = (n % 3) as i64;
                match client.submit(&tenant, priority, pool[n].clone()) {
                    Ok(reply) => replies.push((n, reply.result_json)),
                    Err(e) => fail(format!("client {c} request {r}: {e}")),
                }
            }
            replies
        }));
    }
    let mut by_spec: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for handle in handles {
        for (n, line) in handle.join().expect("client thread") {
            by_spec.entry(n).or_default().push(line);
        }
    }
    let elapsed = started.elapsed();

    // Determinism: every response for one command is byte-identical.
    let mut violations = 0usize;
    for (n, lines) in &by_spec {
        let first = &lines[0];
        for line in lines {
            if line != first {
                violations += 1;
                eprintln!("daemon_load: spec {n}: divergent response\n  {first}\n  {line}");
            }
        }
    }
    if violations > 0 {
        fail(format!("{violations} determinism violation(s)"));
    }

    // Warm economy: the engine ran each distinct scenario exactly once.
    let puts = exec.store().stats().puts;
    if puts != args.specs as u64 {
        fail(format!(
            "expected {} store put(s) (one per distinct scenario), saw {puts}",
            args.specs
        ));
    }

    let counts = daemon.scheduler().counts();
    eprintln!(
        "daemon_load: {} completed ({} warm hits, {} dedup-attached, {} rejected) in {:.2?} — 0 determinism violations, {} store put(s)",
        counts.completed, counts.warm_hits, counts.dedup_attached, counts.rejected, elapsed, puts
    );

    // Response-time histogram from the daemon's own registry.
    let registry = observer.registry().expect("registry is always on here");
    let histogram = registry.histogram("daemon.response_ns", TimeDomain::Wall);
    let to_ms = |ns: u64| ns as f64 / 1e6;
    let p50 = to_ms(histogram.quantile_bound(0.50));
    let p99 = to_ms(histogram.quantile_bound(0.99));
    let max = to_ms(histogram.max());
    eprintln!(
        "daemon_load: response time over {} sample(s): p50 ≤ {p50:.2} ms, p99 ≤ {p99:.2} ms, max {max:.2} ms",
        histogram.count()
    );
    if let Some(limit) = args.p99_max_ms {
        if p99 > limit {
            fail(format!("p99 {p99:.2} ms exceeds limit {limit:.2} ms"));
        }
    }

    // CI artifacts: the distinct command lines, and one guaranteed-warm
    // response line per command — `rackfabricd --oneshot` must reproduce
    // these bytes exactly.
    if let Some(path) = &args.cmd_out {
        let mut body = pool
            .iter()
            .map(|c| c.canonical_json())
            .collect::<Vec<_>>()
            .join("\n");
        body.push('\n');
        std::fs::write(path, body).unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
        eprintln!(
            "daemon_load: wrote {} command line(s) to {path}",
            pool.len()
        );
    }
    if let Some(path) = &args.sample_out {
        let mut samples = Vec::with_capacity(pool.len());
        for (n, command) in pool.iter().enumerate() {
            match client.submit("sampler", 0, command.clone()) {
                Ok(reply) if reply.cached => samples.push(reply.result_json),
                Ok(_) => fail(format!("sample {n}: expected a warm response")),
                Err(e) => fail(format!("sample {n}: {e}")),
            }
        }
        let mut body = samples.join("\n");
        body.push('\n');
        std::fs::write(path, body).unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
        eprintln!(
            "daemon_load: wrote {} warm sample line(s) to {path}",
            samples.len()
        );
    }

    client
        .shutdown()
        .unwrap_or_else(|e| fail(format!("shutdown: {e}")));
    daemon.wait();
    if let (Some(path), Some(sink)) = (&args.trace, observer.trace()) {
        sink.write_file(path)
            .unwrap_or_else(|e| fail(format!("cannot write trace {path}: {e}")));
        eprintln!("daemon_load: wrote trace to {path}");
    }
    if args.store.is_none() {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
    eprintln!("daemon_load: OK");
}
