//! A step-by-step replay of the paper's Figure 2: the rack starts as a 4x4
//! grid at two lanes per link; congestion feedback drives the Closed Ring
//! Control to issue the PLP commands that rewire it into a 4x4 torus at one
//! lane per link, inside the same lane (and power) budget.
//!
//! ```sh
//! cargo run --release --example figure2_reconfiguration
//! ```

use rackfabric::prelude::*;
use rackfabric_phy::{PhyState, PlpExecutor};
use rackfabric_sim::prelude::*;

fn main() {
    // 1. Instantiate the initial grid: 24 mesh links x 2 lanes = 48 lanes.
    let grid = TopologySpec::grid(4, 4, 2);
    let torus = TopologySpec::torus(4, 4, 1);
    let mut phy = PhyState::new();
    let mut topo = grid.instantiate(&mut phy, BitRate::from_gbps(25));
    println!("initial topology : {}", grid.name);
    println!("  links          : {}", topo.edge_count());
    println!("  diameter (hops): {}", topo.diameter().unwrap());
    println!(
        "  active lanes   : {}",
        phy.links().map(|l| l.active_lanes()).sum::<usize>()
    );

    // 2. Plan the reconfiguration the CRC would issue (Figure 2's arrow).
    let plan = plan_reconfiguration(&grid, &torus, &topo, &phy).expect("plan grid -> torus");
    println!("\nplanned PLP commands ({} total):", plan.len());
    let mut counts = std::collections::BTreeMap::new();
    for c in &plan.commands {
        *counts.entry(c.name()).or_insert(0u32) += 1;
    }
    for (name, n) in counts {
        println!("  {name:<18} x{n}");
    }

    // 3. Apply it through the PLP executor.
    let executor = PlpExecutor::default();
    let duration =
        rackfabric::reconfigure::apply(&plan, &executor, &mut phy, &mut topo).expect("apply plan");
    println!("\nreconfiguration completes after {duration} (commands run in parallel)");

    // 4. The rack is now the torus of Figure 2's right-hand side.
    println!("\nfinal topology   : {}", torus.name);
    println!("  links          : {}", topo.edge_count());
    println!("  diameter (hops): {}", topo.diameter().unwrap());
    println!(
        "  active lanes   : {}",
        phy.links().map(|l| l.active_lanes()).sum::<usize>()
    );
    println!(
        "  connected      : {}",
        if topo.is_connected() { "yes" } else { "NO" }
    );
}
