//! The paper's motivating scenario end to end: a MapReduce shuffle whose
//! reducers wait on every mapper, run on (a) the static packet-switched grid
//! baseline and (b) the adaptive fabric that is allowed to reconfigure the
//! grid into a torus when congestion persists.
//!
//! ```sh
//! cargo run --release --example mapreduce_shuffle
//! ```

use rackfabric::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_workload::{MapReduceShuffle, Workload};

fn main() {
    let nodes = 16;
    let partition = Bytes::from_kib(64);
    let flows = MapReduceShuffle::all_to_all(nodes, partition).generate(&mut DetRng::new(7));
    println!(
        "shuffle: {nodes} nodes, {} per partition, {} flows",
        partition,
        flows.len()
    );

    // (a) Static baseline: 4x4 grid, 2 lanes per link, no CRC.
    let mut base_cfg = FabricConfig::baseline(TopologySpec::grid(4, 4, 2));
    base_cfg.sim = SimConfig::with_seed(7).horizon(SimTime::from_millis(2_000));
    let baseline = run_fabric(base_cfg, flows.clone());
    let b = baseline.metrics.summary();

    // (b) Adaptive fabric: same grid, but the CRC may rewire it into a
    // 1-lane torus (same lane budget) when the shuffle saturates it.
    let mut adaptive_cfg = FabricConfig::adaptive(TopologySpec::grid(4, 4, 2));
    adaptive_cfg.upgrade_spec = Some(TopologySpec::torus(4, 4, 1));
    adaptive_cfg.crc.epoch = SimDuration::from_micros(20);
    adaptive_cfg.sim = SimConfig::with_seed(7).horizon(SimTime::from_millis(2_000));
    let adaptive = run_fabric(adaptive_cfg, flows);
    let a = adaptive.metrics.summary();

    println!("\n{:<34}{:>16}{:>16}", "", "baseline grid", "adaptive");
    let row = |name: &str, bv: String, av: String| println!("{name:<34}{bv:>16}{av:>16}");
    row(
        "shuffle completion (us)",
        format!("{:.1}", b.job_completion_us.unwrap_or(f64::NAN)),
        format!("{:.1}", a.job_completion_us.unwrap_or(f64::NAN)),
    );
    row(
        "slowest flow (us)",
        format!("{:.1}", b.flow_completion_max_us),
        format!("{:.1}", a.flow_completion_max_us),
    );
    row(
        "packet p99 latency (us)",
        format!("{:.2}", b.packet_latency.p99 / 1e6),
        format!("{:.2}", a.packet_latency.p99 / 1e6),
    );
    row(
        "goodput (Gb/s)",
        format!("{:.1}", b.goodput_gbps()),
        format!("{:.1}", a.goodput_gbps()),
    );
    row(
        "mean power (W)",
        format!("{:.1}", b.mean_power_w),
        format!("{:.1}", a.mean_power_w),
    );
    row(
        "topology reconfigurations",
        format!("{}", b.topology_reconfigurations),
        format!("{}", a.topology_reconfigurations),
    );
    println!(
        "\nfinal adaptive topology: {} (started as {})",
        adaptive.current_spec.name,
        TopologySpec::grid(4, 4, 2).name
    );
    let speedup = b.job_completion_us.unwrap_or(f64::NAN) / a.job_completion_us.unwrap_or(f64::NAN);
    println!("speedup from adaptation: {speedup:.2}x");
}
